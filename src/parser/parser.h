// Text format for schemas, CFDs, views and data — the surface syntax of
// the library (used by the CLI tool and the examples' spec files).
//
// Line-oriented grammar (# starts a comment, statements end at ';' or
// end of line):
//
//   relation R1(AC, phn, name, street, city, zip)
//   relation S(flag{0,1}, val)          # {..} = finite domain
//
//   cfd R1: [zip] -> street             # plain FD: all-wildcard pattern
//   cfd R1: [AC=20] -> city=LDN         # pattern constants via '='
//   cfd R1: [] -> city=LDN              # empty LHS: constant column
//
//   view V = pi(0.AC as AC, 0.phn, "44" as CC)
//            sigma(0.city = 1.val, 0.AC = "20")
//            from(R1, S)
//        union pi(...) sigma(...) from(...)
//
//     * atoms are listed in from(...); columns are addressed as
//       <atom-index>.<attr>; pi(...) may be omitted (project all);
//       sigma entries are col = col or col = "const".
//
//   cfd V: [CC=44, zip] -> street       # CFD on a declared view
//   eq V: AC = CC                       # special-x CFD (A = B)
//
//   union U = V1, V2                    # SPCU over declared views'
//                                       # disjuncts (union-compatible)
//
//   serve V1, U, V1                     # request round for the serving
//                                       # CLI modes (repeats allowed;
//                                       # default: all views once)
//
//   add-cfd R1: [AC=20] -> city=LDN     # sigma churn script: applied by
//   drop-cfd R1: [zip] -> street        # the CLI batch mode between
//                                       # serving rounds, in order
//
//   insert R1(20, 1234567, Mike, Portland, LDN, "W1B 1JL")
//
// Values may be bare words/numbers or double-quoted strings.

#ifndef CFDPROP_PARSER_PARSER_H_
#define CFDPROP_PARSER_PARSER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/data/database.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// One step of a sigma churn script (add-cfd / drop-cfd statement).
struct SigmaMutation {
  /// true = add-cfd, false = drop-cfd (retract).
  bool add = true;
  CFD cfd;
};

/// A parsed specification: schema + dependencies + views + data.
struct Spec {
  Catalog catalog;

  /// CFDs on source relations, tagged with catalog relation ids.
  std::vector<CFD> source_cfds;

  /// Declared views, in declaration order.
  std::vector<std::string> view_names;
  std::map<std::string, SPCUView> views;

  /// CFDs declared on views (tagged kViewSchemaId; attribute indices are
  /// output column positions of the named view).
  std::vector<std::pair<std::string, CFD>> view_cfds;

  /// Tuples from insert statements.
  std::vector<std::pair<RelationId, Tuple>> inserts;

  /// Sigma churn script (add-cfd / drop-cfd statements, in file order).
  /// The CLI batch mode replays these against the engine's registered
  /// sigma between serving rounds.
  std::vector<SigmaMutation> sigma_mutations;

  /// Serving round declared by `serve V1, V2, V1` statements (in file
  /// order, repeats allowed — a view listed twice models a hot request).
  /// Empty = serve every declared view once, in declaration order,
  /// which is what the batch/serve CLI modes fall back to.
  std::vector<std::string> round_views;

  /// The request round a serving CLI mode should replay: `round_views`
  /// when declared, else every view once in declaration order.
  const std::vector<std::string>& ServingRound() const {
    return round_views.empty() ? view_names : round_views;
  }

  /// The output-column index of `column` in view `view_name`, or kNoAttr.
  AttrIndex FindViewColumn(const std::string& view_name,
                           std::string_view column) const;

  /// Builds a database from the insert statements.
  Result<Database> MakeDatabase();
};

/// Parses a full specification. On error, the Status message carries the
/// line number and a description.
Result<Spec> ParseSpec(std::string_view text);

/// Renders a CFD in the spec syntax ("cfd R1: [AC=20] -> city=LDN"),
/// resolving attribute names through `attr_name`.
std::string FormatCFD(const CFD& cfd, const ValuePool& pool,
                      const std::string& target_name,
                      const std::function<std::string(AttrIndex)>& attr_name);

}  // namespace cfdprop

#endif  // CFDPROP_PARSER_PARSER_H_
