#include "src/net/cover_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "src/net/socket_io.h"

namespace cfdprop {
namespace net {

CoverClient::CoverClient(CoverClientOptions options)
    : options_(std::move(options)) {}

CoverClient::~CoverClient() { Close(); }

Status CoverClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad server address '" + options_.host +
                                   "'");
  }
  std::string last_error = "no attempts made";
  const size_t attempts = std::max<size_t>(1, options_.connect_attempts);
  for (size_t i = 0; i < attempts; ++i) {
    if (i > 0) std::this_thread::sleep_for(options_.retry_delay);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      return Status::OK();
    }
    last_error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
  }
  return Status::NotFound("cannot reach " + options_.host + ":" +
                          std::to_string(options_.port) + " after " +
                          std::to_string(attempts) + " attempts (" +
                          last_error + ")");
}

void CoverClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> CoverClient::RoundTrip(FrameType request,
                                           std::string_view payload,
                                           FrameType expected_reply) {
  if (fd_ < 0) return Status::NotFound("client is not connected");
  if (payload.size() > kMaxFramePayload) {
    // The server would reject the header anyway; fail with a typed
    // error before shipping megabytes it will never parse.
    return Status::ResourceExhausted(
        "request payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte frame bound");
  }
  CFDPROP_RETURN_NOT_OK(WriteAll(fd_, EncodeFrame(request, payload)));
  auto reply = ReadFrame(fd_);
  if (!reply.ok()) {
    // A failed read leaves the stream unsynchronized — drop the
    // connection so the next call reconnects instead of misparsing.
    Close();
    return reply.status();
  }
  if (reply->first != expected_reply) {
    Close();
    return Status::InvalidArgument(
        "wire frame rejected: unexpected reply type " +
        std::to_string(static_cast<int>(reply->first)));
  }
  return std::move(reply->second);
}

Result<OpenCatalogReplyInfo> CoverClient::OpenCatalog(
    const std::string& tenant, const std::string& spec_text) {
  OpenCatalogRequest request{tenant, spec_text};
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kOpenCatalog, EncodeOpenCatalogRequest(request),
                FrameType::kOpenCatalogReply));
  return DecodeOpenCatalogReply(payload);
}

Result<WireBatchResult> CoverClient::SubmitBatch(
    const std::string& tenant, const std::vector<std::string>& views,
    ValuePool& pool) {
  CFDPROP_ASSIGN_OR_RETURN(std::vector<WireBatchResult> batches,
                           SubmitBatches(tenant, {views}, pool));
  if (batches.size() != 1) {
    return Status::Internal("server answered " +
                            std::to_string(batches.size()) +
                            " batches for a single submit");
  }
  return std::move(batches.front());
}

Result<std::vector<WireBatchResult>> CoverClient::SubmitBatches(
    const std::string& tenant,
    const std::vector<std::vector<std::string>>& batches, ValuePool& pool) {
  SubmitBatchRequest request;
  request.tenant = tenant;
  request.batches = batches;
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kSubmitBatch, EncodeSubmitBatchRequest(request),
                FrameType::kSubmitBatchReply));
  CFDPROP_ASSIGN_OR_RETURN(std::vector<WireBatchResult> decoded,
                           DecodeSubmitBatchReply(payload, pool));
  if (decoded.size() != batches.size()) {
    return Status::Internal(
        "server answered " + std::to_string(decoded.size()) +
        " batches for a " + std::to_string(batches.size()) + "-batch submit");
  }
  return decoded;
}

Result<WireServiceStats> CoverClient::Stats() {
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kStats, "", FrameType::kStatsReply));
  return DecodeStatsReply(payload);
}

Result<std::string> CoverClient::Metrics() {
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kMetrics, "", FrameType::kMetricsReply));
  return DecodeMetricsReply(payload);
}

Status CoverClient::DropCatalog(const std::string& tenant) {
  auto payload = RoundTrip(FrameType::kDropCatalog,
                           EncodeStringRequest(tenant),
                           FrameType::kDropCatalogReply);
  if (!payload.ok()) return payload.status();
  return DecodeStatusReply(*payload);
}

Status CoverClient::Shutdown() {
  auto payload =
      RoundTrip(FrameType::kShutdown, "", FrameType::kShutdownReply);
  if (!payload.ok()) return payload.status();
  return DecodeStatusReply(*payload);
}

}  // namespace net
}  // namespace cfdprop
