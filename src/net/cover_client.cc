#include "src/net/cover_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "src/net/socket_io.h"

namespace cfdprop {
namespace net {

namespace {

/// One bounded connect attempt: non-blocking connect + poll, so a peer
/// that swallows SYNs can hold us for at most `budget` instead of the
/// kernel's minutes-long retry schedule. Returns 0 on success, an errno
/// on failure, and ETIMEDOUT when the budget elapsed first.
int ConnectWithBudget(int fd, const sockaddr_in& addr,
                      std::chrono::milliseconds budget) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int err = 0;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      err = errno;
    } else {
      struct pollfd pfd {fd, POLLOUT, 0};
      const int n = ::poll(&pfd, 1, static_cast<int>(budget.count()));
      if (n == 0) {
        err = ETIMEDOUT;
      } else if (n < 0) {
        err = errno;
      } else {
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      }
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return err;
}

}  // namespace

CoverClient::CoverClient(CoverClientOptions options)
    : options_(std::move(options)) {}

CoverClient::~CoverClient() { Close(); }

Status CoverClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad server address '" + options_.host +
                                   "'");
  }
  using Clock = std::chrono::steady_clock;
  const bool bounded = options_.connect_timeout.count() > 0;
  const Clock::time_point deadline = Clock::now() + options_.connect_timeout;
  auto remaining = [&]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                 Clock::now());
  };
  std::string last_error = "no attempts made";
  const size_t attempts = std::max<size_t>(1, options_.connect_attempts);
  for (size_t i = 0; i < attempts; ++i) {
    if (i > 0) {
      // The sleep counts against the overall deadline too — a retry
      // loop that only bounded the connects could still sleep forever.
      auto delay = options_.retry_delay;
      if (bounded) {
        const auto left = remaining();
        if (left.count() <= 0) break;
        delay = std::min(delay, left);
      }
      std::this_thread::sleep_for(delay);
    }
    if (bounded && remaining().count() <= 0) break;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    int err = 0;
    if (bounded) {
      err = ConnectWithBudget(fd, addr, std::max(remaining(),
                                                 std::chrono::milliseconds(1)));
    } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) != 0) {
      err = errno;
    }
    if (err == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Status armed = SetIoDeadline(fd, options_.io_timeout);
      if (!armed.ok()) {
        ::close(fd);
        return armed;
      }
      fd_ = fd;
      return Status::OK();
    }
    last_error = std::string("connect: ") + std::strerror(err);
    ::close(fd);
  }
  const std::string target =
      options_.host + ":" + std::to_string(options_.port);
  if (bounded && remaining().count() <= 0) {
    return Status::DeadlineExceeded(
        "cannot reach " + target + " within " +
        std::to_string(options_.connect_timeout.count()) + " ms (" +
        last_error + ")");
  }
  return Status::NotFound("cannot reach " + target + " after " +
                          std::to_string(attempts) + " attempts (" +
                          last_error + ")");
}

void CoverClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> CoverClient::RoundTrip(FrameType request,
                                           std::string_view payload,
                                           FrameType expected_reply) {
  if (fd_ < 0) return Status::NotFound("client is not connected");
  if (payload.size() > kMaxFramePayload) {
    // The server would reject the header anyway; fail with a typed
    // error before shipping megabytes it will never parse.
    return Status::ResourceExhausted(
        "request payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte frame bound");
  }
  CFDPROP_RETURN_NOT_OK(WriteAll(fd_, EncodeFrame(request, payload)));
  auto reply = ReadFrame(fd_);
  if (!reply.ok()) {
    // A failed read leaves the stream unsynchronized — drop the
    // connection so the next call reconnects instead of misparsing.
    Close();
    return reply.status();
  }
  if (reply->first != expected_reply) {
    Close();
    return Status::InvalidArgument(
        "wire frame rejected: unexpected reply type " +
        std::to_string(static_cast<int>(reply->first)));
  }
  return std::move(reply->second);
}

Result<OpenCatalogReplyInfo> CoverClient::OpenCatalog(
    const std::string& tenant, const std::string& spec_text) {
  OpenCatalogRequest request{tenant, spec_text};
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kOpenCatalog, EncodeOpenCatalogRequest(request),
                FrameType::kOpenCatalogReply));
  return DecodeOpenCatalogReply(payload);
}

Result<WireBatchResult> CoverClient::SubmitBatch(
    const std::string& tenant, const std::vector<std::string>& views,
    ValuePool& pool) {
  CFDPROP_ASSIGN_OR_RETURN(std::vector<WireBatchResult> batches,
                           SubmitBatches(tenant, {views}, pool));
  if (batches.size() != 1) {
    return Status::Internal("server answered " +
                            std::to_string(batches.size()) +
                            " batches for a single submit");
  }
  return std::move(batches.front());
}

Result<std::vector<WireBatchResult>> CoverClient::SubmitBatches(
    const std::string& tenant,
    const std::vector<std::vector<std::string>>& batches, ValuePool& pool) {
  obs::Tracer* tracer = obs::ProcessTracer();
  if (tracer == nullptr) {
    return SubmitBatchesTraced(tenant, batches, pool, {}, /*edge=*/false);
  }
  // No caller-started trace: this client IS the edge.
  return SubmitBatchesTraced(tenant, batches, pool, tracer->StartTrace(),
                             /*edge=*/true);
}

Result<std::vector<WireBatchResult>> CoverClient::SubmitBatches(
    const std::string& tenant,
    const std::vector<std::vector<std::string>>& batches, ValuePool& pool,
    const obs::TraceContext& trace) {
  return SubmitBatchesTraced(tenant, batches, pool, trace, /*edge=*/false);
}

Result<std::vector<WireBatchResult>> CoverClient::SubmitBatchesTraced(
    const std::string& tenant,
    const std::vector<std::vector<std::string>>& batches, ValuePool& pool,
    const obs::TraceContext& trace, bool edge) {
  obs::Tracer* tracer = obs::ProcessTracer();
  uint64_t span_id = 0;
  uint64_t start_us = 0;
  const bool traced = tracer != nullptr && trace.trace_id != 0;
  const bool timed =
      traced && (trace.sampled || (edge && tracer->slow_enabled()));
  SubmitBatchRequest request;
  request.tenant = tenant;
  request.batches = batches;
  if (traced && trace.sampled) {
    // The rpc span id crosses the wire as the parent of every span the
    // server records for this request.
    span_id = tracer->NewSpanId();
    request.trace.trace_id = trace.trace_id;
    request.trace.parent_span_id = span_id;
    request.trace.sampled = true;
  }
  if (timed) {
    if (span_id == 0) span_id = tracer->NewSpanId();
    start_us = tracer->NowUs();
  }
  auto finish = [&] {
    if (!timed) return;
    const uint64_t dur_us = tracer->NowUs() - start_us;
    if (edge) {
      tracer->RecordEdge(trace, span_id, "rpc", start_us, dur_us, tenant);
    } else if (trace.sampled) {
      tracer->Record(trace, span_id, trace.parent_span_id, "rpc", start_us,
                     dur_us, tenant);
    }
  };
  auto payload =
      RoundTrip(FrameType::kSubmitBatch, EncodeSubmitBatchRequest(request),
                FrameType::kSubmitBatchReply);
  finish();
  CFDPROP_RETURN_NOT_OK(payload.status());
  CFDPROP_ASSIGN_OR_RETURN(std::vector<WireBatchResult> decoded,
                           DecodeSubmitBatchReply(*payload, pool));
  if (decoded.size() != batches.size()) {
    return Status::Internal(
        "server answered " + std::to_string(decoded.size()) +
        " batches for a " + std::to_string(batches.size()) + "-batch submit");
  }
  return decoded;
}

Result<WireServiceStats> CoverClient::Stats() {
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kStats, "", FrameType::kStatsReply));
  return DecodeStatsReply(payload);
}

Result<std::string> CoverClient::Metrics() {
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kMetrics, "", FrameType::kMetricsReply));
  return DecodeMetricsReply(payload);
}

Result<std::vector<obs::SpanRecord>> CoverClient::TraceDump() {
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kTraceDump, "", FrameType::kTraceDumpReply));
  return DecodeTraceDumpReply(payload);
}

Result<std::string> CoverClient::FetchSnapshot(const std::string& tenant) {
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kFetchSnapshot, EncodeStringRequest(tenant),
                FrameType::kFetchSnapshotReply));
  return DecodeFetchSnapshotReply(payload);
}

Result<OpenCatalogReplyInfo> CoverClient::OpenFromSnapshot(
    const std::string& tenant, const std::string& spec_text,
    std::string_view snapshot) {
  OpenFromSnapshotRequest request;
  request.tenant = tenant;
  request.spec_text = spec_text;
  request.snapshot = std::string(snapshot);
  CFDPROP_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(FrameType::kOpenFromSnapshot,
                EncodeOpenFromSnapshotRequest(request),
                FrameType::kOpenFromSnapshotReply));
  return DecodeOpenCatalogReply(payload);
}

Status CoverClient::DropCatalog(const std::string& tenant) {
  auto payload = RoundTrip(FrameType::kDropCatalog,
                           EncodeStringRequest(tenant),
                           FrameType::kDropCatalogReply);
  if (!payload.ok()) return payload.status();
  return DecodeStatusReply(*payload);
}

Status CoverClient::Shutdown() {
  auto payload =
      RoundTrip(FrameType::kShutdown, "", FrameType::kShutdownReply);
  if (!payload.ok()) return payload.status();
  return DecodeStatusReply(*payload);
}

}  // namespace net
}  // namespace cfdprop
