// CoverServer: the TCP front end of the multi-tenant CatalogService —
// the first process boundary in the stack.
//
// A POSIX acceptor thread hands each connection to its own thread,
// which loops: read one frame (src/net/wire_protocol.h), dispatch,
// write one reply. Malformed input — bad magic or version, an
// oversized length prefix, a truncated frame, a checksum mismatch —
// surfaces as a clean Status on that connection only: the connection
// is closed (a byte stream that lied once has no trustworthy resync
// point) and counted in decode_errors, while the acceptor and every
// other connection keep serving.
//
// Tenants are opened from *spec text* (the src/parser syntax): the
// server parses it, opens the catalog on the service with the spec's
// source CFDs as Σ 0, and keeps the parsed Spec to resolve submit-batch
// view names against. Clients therefore never ship view structures —
// just names — and covers travel back in the snapshot string-table
// encoding, so the two processes' ValuePools never need to agree.
//
// Admission control is the service's (AdmissionOptions): a multi-batch
// submit frame maps onto CatalogService::SubmitBatches, whose one-lock
// admission makes the admit/reject pattern of a pipelined burst
// deterministic; rejected batches come back as typed ResourceExhausted
// replies, and the counters land in ServiceStatsSnapshot.
//
// Thread-safety: Start/Stop/WaitForShutdown are for the owning thread;
// everything the connection threads touch is internally locked.

#ifndef CFDPROP_NET_COVER_SERVER_H_
#define CFDPROP_NET_COVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/net/wire_protocol.h"
#include "src/parser/parser.h"
#include "src/service/catalog_service.h"

namespace cfdprop {
namespace net {

struct CoverServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks; read the bound port from port().
  uint16_t port = 0;
  /// Per-call socket send/recv deadline applied to every accepted
  /// connection (SO_RCVTIMEO/SO_SNDTIMEO). 0 = no deadline — the
  /// historical fully-blocking behavior. With a deadline armed, a hung
  /// peer (stalled mid-frame, or a dead reader whose full TCP buffer
  /// blocks our reply write) costs at most one deadline window before
  /// the connection surfaces typed DeadlineExceeded and closes — the
  /// thread is reaped, the acceptor and every other connection keep
  /// serving, and no admission slot stays referenced by a dead write.
  std::chrono::milliseconds io_timeout{0};
  /// SO_SNDBUF for accepted connections; 0 = kernel default. Tests
  /// shrink this so a non-reading peer fills the buffer (and trips the
  /// send deadline) without gigabyte replies.
  int send_buffer_bytes = 0;
};

/// Network-level counters (protocol health; serving counters live in
/// ServiceStatsSnapshot).
struct CoverServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_served = 0;
  /// Connections dropped for malformed frames (the corruption battery's
  /// observable).
  uint64_t decode_errors = 0;
  /// Connections dropped because a socket deadline expired (hung peer:
  /// stalled sender mid-frame, or dead reader blocking our reply).
  uint64_t deadlines_exceeded = 0;
};

class CoverServer {
 public:
  /// The service must outlive the server.
  explicit CoverServer(CatalogService& service,
                       CoverServerOptions options = {});
  /// Stops (idempotent with an explicit Stop()).
  ~CoverServer();

  CoverServer(const CoverServer&) = delete;
  CoverServer& operator=(const CoverServer&) = delete;

  /// Binds, listens and starts the acceptor thread. InvalidArgument on
  /// an unusable host/port (address in use, bad address, ...).
  Status Start();

  /// Closes the listener and every live connection, then joins all
  /// threads. Safe to call twice; the destructor calls it.
  void Stop();

  /// The bound port (after a successful Start). With options.port == 0
  /// this is the kernel-assigned ephemeral port.
  uint16_t port() const { return port_; }

  /// Opens a tenant from spec text through exactly the code path a
  /// network open-catalog frame takes — the CLI listen mode preloads
  /// its --tenant flags with this. Also the hook the benchmarks use
  /// with a programmatically built Spec (OpenParsedSpec).
  ///
  /// Re-opening an already-open tenant with *identical* spec text is
  /// idempotent — the reply reports the live tenant, nothing is rebuilt.
  /// This is what lets a reconnecting client (RemoteBackend) replay its
  /// opens without tearing the tenant down; different text on an open
  /// tenant is still InvalidArgument.
  Result<OpenCatalogReplyInfo> OpenSpec(const std::string& tenant,
                                        const std::string& spec_text);
  Result<OpenCatalogReplyInfo> OpenParsedSpec(const std::string& tenant,
                                              Spec spec);

  /// The receiving side of a tenant migration: open from spec (text or
  /// parsed) and warm-start the cover cache from snapshot bytes shipped
  /// over the wire (CatalogService::OpenCatalogFromSnapshot) instead of
  /// this server's snapshot directory. The parsed-Spec variant is the
  /// hook for callers whose specs exist only programmatically (the
  /// workload harness).
  Result<OpenCatalogReplyInfo> OpenSpecFromSnapshot(
      const std::string& tenant, const std::string& spec_text,
      std::string_view snapshot);
  Result<OpenCatalogReplyInfo> OpenParsedSpecFromSnapshot(
      const std::string& tenant, Spec spec, std::string_view snapshot);

  /// Blocks until a client's shutdown frame arrives (or Stop() runs).
  /// The frame only *requests* shutdown — the owner decides to Stop(),
  /// so a connection thread never joins itself.
  void WaitForShutdown();
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  CoverServerStats Stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    /// Set (release) as the serving thread's last act; the acceptor
    /// reaps done connections — join + close — so a long-lived server
    /// does not accumulate one fd and one joinable thread per client
    /// that ever connected.
    std::atomic<bool> done{false};
  };

  /// The trace context a frame carried in-band (submit-batch only),
  /// surfaced to ServeConnection so the connection-level decode/encode/
  /// write spans can be recorded against the request's trace.
  struct FrameTrace {
    obs::TraceContext ctx;
    std::string tenant;
  };

  void AcceptLoop();
  /// Joins and closes every finished connection. Caller holds conns_mu_.
  void ReapFinishedLocked();
  void ServeConnection(Connection* conn);
  /// Dispatches one decoded frame; fills `reply` with the complete
  /// encoded reply frame and `trace` with the frame's in-band trace
  /// context (if any). Returns false when the connection should close
  /// afterwards (shutdown frame).
  bool HandleFrame(FrameType type, std::string_view payload,
                   std::string* reply, FrameTrace* trace);
  std::string HandleOpenCatalog(std::string_view payload);
  std::string HandleSubmitBatch(std::string_view payload, FrameTrace* trace);
  std::string HandleStats();
  std::string HandleDropCatalog(std::string_view payload);
  std::string HandleMetrics();
  std::string HandleTraceDump(std::string_view payload);
  std::string HandleFetchSnapshot(std::string_view payload);
  std::string HandleOpenFromSnapshot(std::string_view payload);
  /// Shared body of the OpenSpec*/OpenParsedSpec* variants: `warm`
  /// non-null warm-starts from those snapshot bytes.
  Result<OpenCatalogReplyInfo> OpenSpecInternal(const std::string& tenant,
                                                const std::string& spec_text,
                                                const std::string_view* warm);
  Result<OpenCatalogReplyInfo> OpenParsedSpecInternal(
      const std::string& tenant, Spec spec, const std::string_view* warm);
  void RequestShutdown();

  CatalogService& service_;
  CoverServerOptions options_;

  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::thread acceptor_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
  bool stopping_ = false;  // guarded by conns_mu_

  /// Tenant name -> parsed spec, for view-name resolution. shared_ptr so
  /// a submit in flight survives a concurrent drop of its tenant.
  mutable std::mutex specs_mu_;
  std::map<std::string, std::shared_ptr<const Spec>> specs_;
  /// Tenant name -> the spec text it was opened with (text-based opens
  /// only), for the idempotent-reopen check in OpenSpec. Guarded by
  /// specs_mu_, erased with specs_.
  std::map<std::string, std::string> spec_texts_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  std::atomic<bool> shutdown_requested_{false};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> deadlines_exceeded_{0};

  /// Network stage histograms (`cfdprop_net_stage_latency_us{stage=}`)
  /// and the collector exporting the counters above — both live in the
  /// service's MetricsRegistry; the collector is removed on the first
  /// Stop() (the registry outlives the server, per the lifetime
  /// contract above).
  obs::Histogram* decode_stage_ = nullptr;  // header parse + checksum
  obs::Histogram* encode_stage_ = nullptr;  // reply frame assembly
  obs::Histogram* write_stage_ = nullptr;   // socket write of the reply
  size_t metrics_collector_id_ = 0;
};

}  // namespace net
}  // namespace cfdprop

#endif  // CFDPROP_NET_COVER_SERVER_H_
