// Blocking POSIX socket I/O shared by CoverServer and CoverClient:
// exact-length reads/writes and whole-frame reassembly on top of the
// wire protocol's codec.
//
// Error taxonomy matters here: a peer that closes between frames is
// normal teardown (NotFound, message "connection closed"), while a
// malformed byte stream — bad magic/version, oversized length prefix,
// mid-frame truncation, checksum mismatch — comes back as the codec's
// InvalidArgument. The server counts only the latter as decode errors.
// A third category: when a socket carries SO_RCVTIMEO/SO_SNDTIMEO
// deadlines (SetIoDeadline below), a peer that stalls — hung mid-frame,
// or a dead reader whose full TCP buffer blocks our send — surfaces as
// typed DeadlineExceeded instead of blocking the calling thread forever.
// The deadline is per recv/send call, not per frame: a peer trickling
// one byte per deadline window can still hold a connection, but never a
// silent, unbounded wedge.

#ifndef CFDPROP_NET_SOCKET_IO_H_
#define CFDPROP_NET_SOCKET_IO_H_

#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "src/base/status.h"
#include "src/net/wire_protocol.h"

namespace cfdprop {
namespace net {

/// Arms per-call send + recv deadlines on `fd` (SO_RCVTIMEO/SO_SNDTIMEO).
/// A non-positive timeout is a no-op: the socket stays fully blocking,
/// which is the historical behavior. Once armed, a recv/send that waits
/// longer than `timeout` fails with EAGAIN/EWOULDBLOCK, which
/// ReadExact/WriteAll translate to Status::DeadlineExceeded.
inline Status SetIoDeadline(int fd, std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return Status::OK();
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(std::string("setsockopt(SO_RCVTIMEO/SNDTIMEO): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

/// Reads exactly `n` bytes. A clean peer close *before the first byte*
/// is NotFound("connection closed"); a close mid-buffer is
/// InvalidArgument (the stream was truncated inside something).
inline Status ReadExact(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::InvalidArgument(
          "wire frame rejected: connection closed mid-frame after " +
          std::to_string(got) + " of " + std::to_string(n) + " bytes");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "recv deadline exceeded after " + std::to_string(got) + " of " +
            std::to_string(n) + " bytes");
      }
      return Status::NotFound(std::string("recv failed: ") +
                              std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

/// Writes all of `data` (MSG_NOSIGNAL: a vanished peer surfaces as a
/// Status, never as SIGPIPE).
inline Status WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "send deadline exceeded after " + std::to_string(sent) + " of " +
            std::to_string(data.size()) + " bytes");
      }
      return Status::NotFound(std::string("send failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Reads and fully validates one frame; returns its type and payload.
/// The header is decoded (and its length bound enforced) before the
/// payload read is sized, so an oversized length prefix can never drive
/// a giant allocation — it rejects straight off the 13 header bytes.
///
/// With `decode_us` set, the pure decode cost — header parse plus
/// whole-frame checksum verification, explicitly excluding the blocking
/// socket reads — is reported in microseconds (the server's
/// `stage="decode"` histogram).
inline Result<std::pair<FrameType, std::string>> ReadFrame(
    int fd, double* decode_us = nullptr) {
  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds decoding{0};
  std::string frame(kFrameHeaderBytes, '\0');
  CFDPROP_RETURN_NOT_OK(ReadExact(fd, frame.data(), kFrameHeaderBytes));
  Clock::time_point t0;
  if (decode_us) t0 = Clock::now();
  auto header = DecodeFrameHeader(frame);
  if (decode_us) decoding += Clock::now() - t0;
  CFDPROP_RETURN_NOT_OK(header.status());
  const size_t rest = header->payload_len + kFrameTrailerBytes;
  frame.resize(kFrameHeaderBytes + rest);
  CFDPROP_RETURN_NOT_OK(ReadExact(fd, frame.data() + kFrameHeaderBytes, rest));
  if (decode_us) t0 = Clock::now();
  auto payload = VerifyFrame(frame);
  if (decode_us) {
    decoding += Clock::now() - t0;
    *decode_us = std::chrono::duration<double, std::micro>(decoding).count();
  }
  CFDPROP_RETURN_NOT_OK(payload.status());
  return std::make_pair(header->type, std::string(*payload));
}

}  // namespace net
}  // namespace cfdprop

#endif  // CFDPROP_NET_SOCKET_IO_H_
