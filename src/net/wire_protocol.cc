#include "src/net/wire_protocol.h"

#include <functional>
#include <unordered_map>
#include <utility>

#include "src/base/hash.h"
#include "src/base/wire.h"
#include "src/engine/cover_cache.h"

namespace cfdprop {
namespace net {

namespace {

uint64_t Checksum(std::string_view bytes) {
  Fnv1aHasher h;
  for (char c : bytes) h.MixByte(static_cast<uint8_t>(c));
  return h.digest();
}

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("wire frame rejected: " + what);
}

bool KnownFrameType(uint8_t t) {
  const uint8_t base = t & ~kReplyBit;
  return base >= static_cast<uint8_t>(FrameType::kOpenCatalog) &&
         base <= static_cast<uint8_t>(FrameType::kTraceDump);
}

/// Strings travel as u32 length + raw bytes; the length is checked
/// against the remaining payload before anything is copied.
void PutString(std::string& out, std::string_view s) {
  wire::PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

bool GetString(std::string_view in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  std::string_view bytes;
  if (!wire::GetU32(in, pos, &len) ||
      !wire::GetBytes(in, pos, len, &bytes)) {
    return false;
  }
  s->assign(bytes);
  return true;
}

Status DecodeStatusAt(std::string_view in, size_t* pos, Status* status) {
  if (!DecodeStatus(in, pos, status)) {
    return Malformed("truncated status");
  }
  return Status::OK();
}

constexpr uint8_t kFlagAlwaysEmpty = 1u << 0;
constexpr uint8_t kFlagTruncated = 1u << 1;

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  out.append(kWireMagic, sizeof(kWireMagic));
  wire::PutU32(out, kWireVersion);
  wire::PutU8(out, static_cast<uint8_t>(type));
  wire::PutU32(out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  wire::PutU64(out, Checksum(out));
  return out;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Malformed("header truncated");
  }
  if (bytes.compare(0, sizeof(kWireMagic), kWireMagic, sizeof(kWireMagic)) !=
      0) {
    return Malformed("bad magic (not a cover-protocol frame)");
  }
  size_t pos = sizeof(kWireMagic);
  uint32_t version = 0;
  wire::GetU32(bytes, &pos, &version);
  if (version != kWireVersion) {
    return Malformed("protocol version " + std::to_string(version) +
                     " (this build speaks " + std::to_string(kWireVersion) +
                     ")");
  }
  uint8_t type = 0;
  wire::GetU8(bytes, &pos, &type);
  if (!KnownFrameType(type)) {
    return Malformed("unknown frame type " + std::to_string(type));
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  wire::GetU32(bytes, &pos, &header.payload_len);
  if (header.payload_len > kMaxFramePayload) {
    return Malformed("payload length " + std::to_string(header.payload_len) +
                     " exceeds the " + std::to_string(kMaxFramePayload) +
                     "-byte frame bound");
  }
  return header;
}

Result<std::string_view> VerifyFrame(std::string_view frame) {
  CFDPROP_ASSIGN_OR_RETURN(FrameHeader header, DecodeFrameHeader(frame));
  const size_t expected =
      kFrameHeaderBytes + header.payload_len + kFrameTrailerBytes;
  if (frame.size() != expected) {
    return Malformed("frame is " + std::to_string(frame.size()) +
                     " bytes, header promises " + std::to_string(expected));
  }
  size_t trailer_pos = frame.size() - kFrameTrailerBytes;
  uint64_t stored = 0;
  wire::GetU64(frame, &trailer_pos, &stored);
  if (Checksum(frame.substr(0, frame.size() - kFrameTrailerBytes)) != stored) {
    return Malformed("checksum mismatch (truncated or corrupt)");
  }
  return frame.substr(kFrameHeaderBytes, header.payload_len);
}

void EncodeStatus(std::string& out, const Status& status) {
  wire::PutU8(out, static_cast<uint8_t>(status.code()));
  PutString(out, status.message());
}

bool DecodeStatus(std::string_view in, size_t* pos, Status* status) {
  uint8_t code = 0;
  std::string message;
  if (!wire::GetU8(in, pos, &code) || !GetString(in, pos, &message)) {
    return false;
  }
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      *status = Status::OK();
      return true;
    case StatusCode::kInvalidArgument:
      *status = Status::InvalidArgument(std::move(message));
      return true;
    case StatusCode::kNotFound:
      *status = Status::NotFound(std::move(message));
      return true;
    case StatusCode::kInconsistent:
      *status = Status::Inconsistent(std::move(message));
      return true;
    case StatusCode::kResourceExhausted:
      *status = Status::ResourceExhausted(std::move(message));
      return true;
    case StatusCode::kUnsupported:
      *status = Status::Unsupported(std::move(message));
      return true;
    case StatusCode::kInternal:
      *status = Status::Internal(std::move(message));
      return true;
    case StatusCode::kDeadlineExceeded:
      *status = Status::DeadlineExceeded(std::move(message));
      return true;
    case StatusCode::kUnavailable:
      *status = Status::Unavailable(std::move(message));
      return true;
  }
  *status = Status::Internal("unknown wire status code " +
                             std::to_string(code) + ": " + message);
  return true;
}

std::string EncodeOpenCatalogRequest(const OpenCatalogRequest& request) {
  std::string out;
  PutString(out, request.tenant);
  PutString(out, request.spec_text);
  return out;
}

Result<OpenCatalogRequest> DecodeOpenCatalogRequest(std::string_view payload) {
  OpenCatalogRequest request;
  size_t pos = 0;
  if (!GetString(payload, &pos, &request.tenant) ||
      !GetString(payload, &pos, &request.spec_text) ||
      pos != payload.size()) {
    return Malformed("open-catalog request truncated");
  }
  return request;
}

std::string EncodeOpenCatalogReply(const Status& status,
                                   const OpenCatalogReplyInfo& info) {
  std::string out;
  EncodeStatus(out, status);
  wire::PutU64(out, info.restored);
  wire::PutU64(out, info.rejected);
  wire::PutU64(out, info.cache_budget);
  return out;
}

Result<OpenCatalogReplyInfo> DecodeOpenCatalogReply(std::string_view payload) {
  size_t pos = 0;
  Status status;
  CFDPROP_RETURN_NOT_OK(DecodeStatusAt(payload, &pos, &status));
  CFDPROP_RETURN_NOT_OK(status);
  OpenCatalogReplyInfo info;
  if (!wire::GetU64(payload, &pos, &info.restored) ||
      !wire::GetU64(payload, &pos, &info.rejected) ||
      !wire::GetU64(payload, &pos, &info.cache_budget) ||
      pos != payload.size()) {
    return Malformed("open-catalog reply truncated");
  }
  return info;
}

std::string EncodeSubmitBatchRequest(const SubmitBatchRequest& request) {
  std::string out;
  PutString(out, request.tenant);
  wire::PutU64(out, request.batches.size());
  for (const auto& batch : request.batches) {
    wire::PutU64(out, batch.size());
    for (const std::string& view : batch) PutString(out, view);
  }
  // Optional trace block (v4): presence flag, then the ids. Untraced
  // traffic (trace_id == 0) costs the flag byte only.
  if (request.trace.trace_id != 0) {
    wire::PutU8(out, request.trace.sampled ? 2 : 1);
    wire::PutU64(out, request.trace.trace_id);
    wire::PutU64(out, request.trace.parent_span_id);
  } else {
    wire::PutU8(out, 0);
  }
  return out;
}

Result<SubmitBatchRequest> DecodeSubmitBatchRequest(
    std::string_view payload) {
  SubmitBatchRequest request;
  size_t pos = 0;
  uint64_t num_batches = 0;
  if (!GetString(payload, &pos, &request.tenant) ||
      !wire::GetU64(payload, &pos, &num_batches) ||
      num_batches > (payload.size() - pos)) {
    return Malformed("submit-batch request truncated");
  }
  request.batches.reserve(num_batches);
  for (uint64_t i = 0; i < num_batches; ++i) {
    uint64_t num_views = 0;
    if (!wire::GetU64(payload, &pos, &num_views) ||
        num_views > (payload.size() - pos)) {
      return Malformed("submit-batch request truncated");
    }
    std::vector<std::string> views;
    views.reserve(num_views);
    for (uint64_t j = 0; j < num_views; ++j) {
      std::string view;
      if (!GetString(payload, &pos, &view)) {
        return Malformed("submit-batch request truncated");
      }
      views.push_back(std::move(view));
    }
    request.batches.push_back(std::move(views));
  }
  uint8_t trace_flag = 0;
  if (!wire::GetU8(payload, &pos, &trace_flag) || trace_flag > 2) {
    return Malformed("submit-batch trace block truncated");
  }
  if (trace_flag != 0) {
    if (!wire::GetU64(payload, &pos, &request.trace.trace_id) ||
        !wire::GetU64(payload, &pos, &request.trace.parent_span_id) ||
        request.trace.trace_id == 0) {
      return Malformed("submit-batch trace block truncated");
    }
    request.trace.sampled = trace_flag == 2;
  }
  if (pos != payload.size()) {
    return Malformed("trailing bytes after submit-batch request");
  }
  return request;
}

std::string EncodeSubmitBatchReply(const Status& status,
                                   const std::vector<WireBatchResult>& batches,
                                   const ValuePool& pool) {
  // Serialize the result body first: the string table is collected in
  // first-use order of the cover content (exactly the snapshot format's
  // discipline — equal covers, equal bytes), but travels before it.
  std::unordered_map<Value, uint32_t> value_slot;
  std::vector<Value> table_values;
  auto value_index = [&](Value v) {
    auto [it, inserted] =
        value_slot.emplace(v, static_cast<uint32_t>(table_values.size()));
    if (inserted) table_values.push_back(v);
    return it->second;
  };

  std::string body;
  wire::PutU64(body, batches.size());
  for (const WireBatchResult& batch : batches) {
    EncodeStatus(body, batch.status);
    if (!batch.status.ok()) continue;
    wire::PutU64(body, batch.results.size());
    for (const Result<EngineResult>& r : batch.results) {
      if (!r.ok()) {
        EncodeStatus(body, r.status());
        continue;
      }
      EncodeStatus(body, Status::OK());
      wire::PutU64(body, r->fingerprint);
      wire::PutU8(body, r->cache_hit ? 1 : 0);
      uint8_t flags = 0;
      if (r->cover->always_empty) flags |= kFlagAlwaysEmpty;
      if (r->cover->truncated) flags |= kFlagTruncated;
      wire::PutU8(body, flags);
      wire::PutU64(body, r->disjunct_hits);
      wire::PutU64(body, r->disjunct_count);
      wire::PutU64(body, r->cover->cover.size());
      for (const CFD& c : r->cover->cover) {
        c.AppendSnapshotBytes(body, value_index);
      }
    }
  }

  std::string out;
  EncodeStatus(out, status);
  wire::PutU64(out, table_values.size());
  for (Value v : table_values) PutString(out, pool.Text(v));
  out.append(body);
  return out;
}

Result<std::vector<WireBatchResult>> DecodeSubmitBatchReply(
    std::string_view payload, ValuePool& pool) {
  size_t pos = 0;
  Status status;
  CFDPROP_RETURN_NOT_OK(DecodeStatusAt(payload, &pos, &status));
  CFDPROP_RETURN_NOT_OK(status);

  uint64_t num_strings = 0;
  if (!wire::GetU64(payload, &pos, &num_strings) ||
      num_strings > (payload.size() - pos)) {
    return Malformed("reply string table truncated");
  }
  std::vector<std::string_view> texts;
  texts.reserve(num_strings);
  for (uint64_t i = 0; i < num_strings; ++i) {
    uint32_t len = 0;
    std::string_view text;
    if (!wire::GetU32(payload, &pos, &len) ||
        !wire::GetBytes(payload, &pos, len, &text)) {
      return Malformed("reply string table truncated");
    }
    texts.push_back(text);
  }
  // Lazy interning, as in snapshot load: only constants a decoded cover
  // actually references enter the caller's append-only pool.
  std::vector<Value> interned(texts.size(), kNoValue);
  std::function<Result<Value>(uint32_t)> intern_at =
      [&](uint32_t index) -> Result<Value> {
    if (index >= texts.size()) {
      return Status::InvalidArgument(
          "pattern constant index out of string-table range");
    }
    if (interned[index] == kNoValue) {
      interned[index] = pool.Intern(texts[index]);
    }
    return interned[index];
  };

  uint64_t num_batches = 0;
  if (!wire::GetU64(payload, &pos, &num_batches) ||
      num_batches > (payload.size() - pos)) {
    return Malformed("reply batch table truncated");
  }
  std::vector<WireBatchResult> batches;
  batches.reserve(num_batches);
  for (uint64_t i = 0; i < num_batches; ++i) {
    WireBatchResult batch;
    CFDPROP_RETURN_NOT_OK(DecodeStatusAt(payload, &pos, &batch.status));
    if (!batch.status.ok()) {
      batches.push_back(std::move(batch));
      continue;
    }
    uint64_t num_results = 0;
    if (!wire::GetU64(payload, &pos, &num_results) ||
        num_results > (payload.size() - pos)) {
      return Malformed("reply result table truncated");
    }
    batch.results.reserve(num_results);
    for (uint64_t j = 0; j < num_results; ++j) {
      Status result_status;
      CFDPROP_RETURN_NOT_OK(DecodeStatusAt(payload, &pos, &result_status));
      if (!result_status.ok()) {
        batch.results.emplace_back(std::move(result_status));
        continue;
      }
      EngineResult result;
      uint8_t cache_hit = 0, flags = 0;
      uint64_t disjunct_hits = 0, disjunct_count = 0, cover_size = 0;
      if (!wire::GetU64(payload, &pos, &result.fingerprint) ||
          !wire::GetU8(payload, &pos, &cache_hit) ||
          !wire::GetU8(payload, &pos, &flags) ||
          !wire::GetU64(payload, &pos, &disjunct_hits) ||
          !wire::GetU64(payload, &pos, &disjunct_count) ||
          !wire::GetU64(payload, &pos, &cover_size) ||
          cover_size > (payload.size() - pos)) {
        return Malformed("reply result " + std::to_string(j) + " truncated");
      }
      result.cache_hit = cache_hit != 0;
      result.disjunct_hits = static_cast<size_t>(disjunct_hits);
      result.disjunct_count = static_cast<size_t>(disjunct_count);
      auto cover = std::make_shared<CachedCover>();
      cover->always_empty = (flags & kFlagAlwaysEmpty) != 0;
      cover->truncated = (flags & kFlagTruncated) != 0;
      cover->cover.reserve(cover_size);
      for (uint64_t k = 0; k < cover_size; ++k) {
        auto cfd = CFD::FromSnapshotBytes(payload, &pos, intern_at);
        if (!cfd.ok()) {
          return Malformed("reply cover CFD: " + cfd.status().message());
        }
        cover->cover.push_back(std::move(cfd).value());
      }
      result.cover = std::move(cover);
      batch.results.emplace_back(std::move(result));
    }
    batches.push_back(std::move(batch));
  }
  if (pos != payload.size()) {
    return Malformed("trailing bytes after reply batches");
  }
  return batches;
}

std::string EncodeStringRequest(std::string_view text) {
  std::string out;
  PutString(out, text);
  return out;
}

Result<std::string> DecodeStringRequest(std::string_view payload) {
  std::string text;
  size_t pos = 0;
  if (!GetString(payload, &pos, &text) || pos != payload.size()) {
    return Malformed("request truncated");
  }
  return text;
}

std::string EncodeFetchSnapshotReply(const Status& status,
                                     std::string_view snapshot) {
  std::string out;
  EncodeStatus(out, status);
  PutString(out, snapshot);
  return out;
}

Result<std::string> DecodeFetchSnapshotReply(std::string_view payload) {
  size_t pos = 0;
  Status status;
  CFDPROP_RETURN_NOT_OK(DecodeStatusAt(payload, &pos, &status));
  CFDPROP_RETURN_NOT_OK(status);
  std::string snapshot;
  if (!GetString(payload, &pos, &snapshot) || pos != payload.size()) {
    return Malformed("fetch-snapshot reply truncated");
  }
  return snapshot;
}

std::string EncodeOpenFromSnapshotRequest(
    const OpenFromSnapshotRequest& request) {
  std::string out;
  PutString(out, request.tenant);
  PutString(out, request.spec_text);
  PutString(out, request.snapshot);
  return out;
}

Result<OpenFromSnapshotRequest> DecodeOpenFromSnapshotRequest(
    std::string_view payload) {
  OpenFromSnapshotRequest request;
  size_t pos = 0;
  if (!GetString(payload, &pos, &request.tenant) ||
      !GetString(payload, &pos, &request.spec_text) ||
      !GetString(payload, &pos, &request.snapshot) ||
      pos != payload.size()) {
    return Malformed("open-from-snapshot request truncated");
  }
  return request;
}

std::string EncodeStatusReply(const Status& status) {
  std::string out;
  EncodeStatus(out, status);
  return out;
}

Status DecodeStatusReply(std::string_view payload) {
  size_t pos = 0;
  Status status;
  CFDPROP_RETURN_NOT_OK(DecodeStatusAt(payload, &pos, &status));
  if (pos != payload.size()) {
    return Malformed("trailing bytes after status reply");
  }
  return status;
}

std::string EncodeStatsReply(const Status& status,
                             const WireServiceStats& stats) {
  std::string out;
  EncodeStatus(out, status);
  wire::PutU64(out, stats.global_cache_budget);
  wire::PutU64(out, stats.batches_submitted);
  wire::PutU64(out, stats.batches_completed);
  wire::PutU64(out, stats.batches_rejected);
  wire::PutU64(out, stats.tenants.size());
  for (const WireTenantStats& t : stats.tenants) {
    PutString(out, t.name);
    wire::PutU64(out, t.cache_budget);
    wire::PutU64(out, t.batches_submitted);
    wire::PutU64(out, t.admitted);
    wire::PutU64(out, t.admission_rejected);
    wire::PutU64(out, t.queued);
    wire::PutU64(out, t.running);
    PutString(out, t.engine_text);
  }
  return out;
}

Result<WireServiceStats> DecodeStatsReply(std::string_view payload) {
  size_t pos = 0;
  Status status;
  CFDPROP_RETURN_NOT_OK(DecodeStatusAt(payload, &pos, &status));
  CFDPROP_RETURN_NOT_OK(status);
  WireServiceStats stats;
  uint64_t num_tenants = 0;
  if (!wire::GetU64(payload, &pos, &stats.global_cache_budget) ||
      !wire::GetU64(payload, &pos, &stats.batches_submitted) ||
      !wire::GetU64(payload, &pos, &stats.batches_completed) ||
      !wire::GetU64(payload, &pos, &stats.batches_rejected) ||
      !wire::GetU64(payload, &pos, &num_tenants) ||
      num_tenants > (payload.size() - pos)) {
    return Malformed("stats reply truncated");
  }
  stats.tenants.reserve(num_tenants);
  for (uint64_t i = 0; i < num_tenants; ++i) {
    WireTenantStats t;
    if (!GetString(payload, &pos, &t.name) ||
        !wire::GetU64(payload, &pos, &t.cache_budget) ||
        !wire::GetU64(payload, &pos, &t.batches_submitted) ||
        !wire::GetU64(payload, &pos, &t.admitted) ||
        !wire::GetU64(payload, &pos, &t.admission_rejected) ||
        !wire::GetU64(payload, &pos, &t.queued) ||
        !wire::GetU64(payload, &pos, &t.running) ||
        !GetString(payload, &pos, &t.engine_text)) {
      return Malformed("stats reply truncated");
    }
    stats.tenants.push_back(std::move(t));
  }
  if (pos != payload.size()) {
    return Malformed("trailing bytes after stats reply");
  }
  return stats;
}

std::string EncodeMetricsReply(const Status& status, std::string_view text) {
  std::string out;
  EncodeStatus(out, status);
  PutString(out, text);
  return out;
}

Result<std::string> DecodeMetricsReply(std::string_view payload) {
  size_t pos = 0;
  Status status;
  CFDPROP_RETURN_NOT_OK(DecodeStatusAt(payload, &pos, &status));
  CFDPROP_RETURN_NOT_OK(status);
  std::string text;
  if (!GetString(payload, &pos, &text) || pos != payload.size()) {
    return Malformed("metrics reply truncated");
  }
  return text;
}

Status DecodeTraceDumpRequest(std::string_view payload) {
  if (!payload.empty()) {
    return Malformed("trace-dump request carries unexpected payload");
  }
  return Status::OK();
}

std::string EncodeTraceDumpReply(const Status& status,
                                 const std::vector<obs::SpanRecord>& spans) {
  // String table in first-use order over names, tenants and annotations
  // (the snapshot discipline): equal span sets encode to equal bytes.
  std::unordered_map<std::string_view, uint32_t> string_slot;
  std::vector<std::string_view> table;
  auto string_index = [&](std::string_view s) {
    auto [it, inserted] =
        string_slot.emplace(s, static_cast<uint32_t>(table.size()));
    if (inserted) table.push_back(s);
    return it->second;
  };

  std::string body;
  wire::PutU64(body, spans.size());
  for (const obs::SpanRecord& span : spans) {
    wire::PutU64(body, span.trace_id);
    wire::PutU64(body, span.span_id);
    wire::PutU64(body, span.parent_id);
    wire::PutU64(body, span.start_us);
    wire::PutU64(body, span.dur_us);
    wire::PutU32(body, static_cast<uint32_t>(span.shard));
    wire::PutU8(body, span.slow ? 1 : 0);
    wire::PutU32(body, string_index(span.name));
    wire::PutU32(body, string_index(span.tenant));
    wire::PutU32(body, string_index(span.annot));
  }

  std::string out;
  EncodeStatus(out, status);
  wire::PutU64(out, table.size());
  for (std::string_view s : table) PutString(out, s);
  out.append(body);
  return out;
}

Result<std::vector<obs::SpanRecord>> DecodeTraceDumpReply(
    std::string_view payload) {
  size_t pos = 0;
  Status status;
  CFDPROP_RETURN_NOT_OK(DecodeStatusAt(payload, &pos, &status));
  CFDPROP_RETURN_NOT_OK(status);

  uint64_t num_strings = 0;
  if (!wire::GetU64(payload, &pos, &num_strings) ||
      num_strings > (payload.size() - pos)) {
    return Malformed("trace-dump string table truncated");
  }
  std::vector<std::string_view> table;
  table.reserve(num_strings);
  for (uint64_t i = 0; i < num_strings; ++i) {
    uint32_t len = 0;
    std::string_view s;
    if (!wire::GetU32(payload, &pos, &len) ||
        !wire::GetBytes(payload, &pos, len, &s)) {
      return Malformed("trace-dump string table truncated");
    }
    table.push_back(s);
  }
  auto string_at = [&](uint32_t index, std::string* out) {
    if (index >= table.size()) return false;
    out->assign(table[index]);
    return true;
  };

  uint64_t num_spans = 0;
  if (!wire::GetU64(payload, &pos, &num_spans) ||
      num_spans > (payload.size() - pos)) {
    return Malformed("trace-dump span table truncated");
  }
  std::vector<obs::SpanRecord> spans;
  spans.reserve(num_spans);
  for (uint64_t i = 0; i < num_spans; ++i) {
    obs::SpanRecord span;
    uint32_t shard = 0, name_i = 0, tenant_i = 0, annot_i = 0;
    uint8_t slow = 0;
    if (!wire::GetU64(payload, &pos, &span.trace_id) ||
        !wire::GetU64(payload, &pos, &span.span_id) ||
        !wire::GetU64(payload, &pos, &span.parent_id) ||
        !wire::GetU64(payload, &pos, &span.start_us) ||
        !wire::GetU64(payload, &pos, &span.dur_us) ||
        !wire::GetU32(payload, &pos, &shard) ||
        !wire::GetU8(payload, &pos, &slow) || slow > 1 ||
        !wire::GetU32(payload, &pos, &name_i) ||
        !wire::GetU32(payload, &pos, &tenant_i) ||
        !wire::GetU32(payload, &pos, &annot_i) ||
        !string_at(name_i, &span.name) ||
        !string_at(tenant_i, &span.tenant) ||
        !string_at(annot_i, &span.annot)) {
      return Malformed("trace-dump span " + std::to_string(i) + " truncated");
    }
    span.shard = static_cast<int32_t>(shard);
    span.slow = slow != 0;
    spans.push_back(std::move(span));
  }
  if (pos != payload.size()) {
    return Malformed("trailing bytes after trace-dump spans");
  }
  return spans;
}

}  // namespace net
}  // namespace cfdprop
