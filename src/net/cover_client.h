// CoverClient: the small blocking client library for CoverServer — what
// the loopback tests, the CLI `client` mode and the benchmark share.
//
// One TCP connection, strict request/reply framing: every call sends one
// frame and blocks for its reply. SubmitBatches pipelines a whole burst
// of batches into a single frame, which the server admits atomically
// (see AdmissionOptions) — the deterministic way to drive per-tenant
// admission control from outside the process.
//
// Covers come back in the snapshot string-table encoding and are
// re-interned into a caller-supplied ValuePool, so the client needs no
// knowledge of the server's pool. Protocol-level errors keep their
// StatusCode across the wire: an admission rejection is the same typed
// ResourceExhausted an in-process CatalogService::SubmitBatch returns.
//
// Not thread-safe: one CoverClient is one conversation. Use a client
// per thread (connections are cheap; the server threads per
// connection).

#ifndef CFDPROP_NET_COVER_CLIENT_H_
#define CFDPROP_NET_COVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"
#include "src/net/wire_protocol.h"

namespace cfdprop {
namespace net {

struct CoverClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Connect() retries: scripts and CI start `listen` in the background
  /// and race the client against the server's bind, so the client polls
  /// rather than demanding the server be up first.
  size_t connect_attempts = 50;
  std::chrono::milliseconds retry_delay{100};
  /// Overall Connect() deadline spanning every attempt *and* the sleeps
  /// between them. 0 = no deadline: the historical attempts-only bound
  /// (which, with a long retry_delay, had no wall-clock ceiling at
  /// all). When armed, Connect() returns typed DeadlineExceeded once
  /// the budget elapses, and each in-flight ::connect is bounded by the
  /// remaining budget (non-blocking connect + poll).
  std::chrono::milliseconds connect_timeout{0};
  /// Per-call socket send/recv deadline (SO_RCVTIMEO/SO_SNDTIMEO) armed
  /// after a successful connect. 0 = fully blocking. When an I/O
  /// deadline fires mid-RoundTrip the call returns typed
  /// DeadlineExceeded and the connection is dropped (the stream has no
  /// resync point), so the next call reconnects.
  std::chrono::milliseconds io_timeout{0};
};

class CoverClient {
 public:
  explicit CoverClient(CoverClientOptions options);
  ~CoverClient();

  CoverClient(const CoverClient&) = delete;
  CoverClient& operator=(const CoverClient&) = delete;

  /// Connects, retrying per the options. NotFound when every attempt
  /// fails.
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Ships spec text for the server to parse and open as a tenant.
  Result<OpenCatalogReplyInfo> OpenCatalog(const std::string& tenant,
                                           const std::string& spec_text);

  /// Serves one batch of view-name requests; decoded covers intern
  /// their constants into `pool`.
  Result<WireBatchResult> SubmitBatch(const std::string& tenant,
                                      const std::vector<std::string>& views,
                                      ValuePool& pool);

  /// Pipelined burst: all batches travel in one frame and their
  /// admission is decided atomically server-side, so slot i's
  /// admit/reject outcome is deterministic. slot i answers batches[i].
  /// With a process tracer installed this overload is the trace edge:
  /// it starts a new trace, records the rpc span and applies slow-
  /// request capture to the round trip.
  Result<std::vector<WireBatchResult>> SubmitBatches(
      const std::string& tenant,
      const std::vector<std::vector<std::string>>& batches, ValuePool& pool);

  /// Same, under a caller-started trace (the router's edge): the rpc
  /// span parents to `trace.parent_span_id` and the slow-capture
  /// decision stays with the caller.
  Result<std::vector<WireBatchResult>> SubmitBatches(
      const std::string& tenant,
      const std::vector<std::vector<std::string>>& batches, ValuePool& pool,
      const obs::TraceContext& trace);

  Result<WireServiceStats> Stats();

  /// Scrapes the server's metrics: the full Prometheus-style text
  /// exposition (src/obs), every layer in one fetch.
  Result<std::string> Metrics();

  /// Reads the server process's span rings back (main + slow), in ring
  /// append order — the raw material for a stitched cross-process tree.
  Result<std::vector<obs::SpanRecord>> TraceDump();

  /// Migration, step 1: the server drains the tenant's in-service
  /// batches, then ships its cover cache as .ccsnap snapshot bytes.
  Result<std::string> FetchSnapshot(const std::string& tenant);

  /// Migration, step 2 (against the *target* server): open the tenant
  /// from spec text and warm-start its cache from `snapshot`. The reply
  /// reports the warm-start's restored/rejected line counts.
  Result<OpenCatalogReplyInfo> OpenFromSnapshot(const std::string& tenant,
                                                const std::string& spec_text,
                                                std::string_view snapshot);

  Status DropCatalog(const std::string& tenant);

  /// Asks the server process to wind down (it stops accepting and its
  /// owner exits); the reply confirms receipt.
  Status Shutdown();

 private:
  /// Sends one frame, reads one reply, checks the reply type.
  Result<std::string> RoundTrip(FrameType request, std::string_view payload,
                                FrameType expected_reply);

  /// Shared submit body; `edge` marks this client as the trace's edge
  /// (slow capture applies to the round trip here, not at a caller).
  Result<std::vector<WireBatchResult>> SubmitBatchesTraced(
      const std::string& tenant,
      const std::vector<std::vector<std::string>>& batches, ValuePool& pool,
      const obs::TraceContext& trace, bool edge);

  CoverClientOptions options_;
  int fd_ = -1;
};

}  // namespace net
}  // namespace cfdprop

#endif  // CFDPROP_NET_COVER_CLIENT_H_
