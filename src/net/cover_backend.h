// CoverBackend: the one serving surface in front of a cover catalog,
// whether it lives in this process or behind a socket.
//
// Before this interface the stack had two divergent submit APIs —
// CatalogService::SubmitBatch (future-based, in-process) and
// CoverClient::SubmitBatch (blocking, wire) — and every caller that
// wanted to serve "either way" (the workload runner, the CLI) carried
// hand-rolled inproc|tcp branching. CoverBackend collapses that:
// OpenCatalog / SubmitBatch(es) / Stats / Metrics / DropCatalog, all
// returning the typed Result<>s whose StatusCodes survive the wire, so
// a caller programs against one surface and an injection decides where
// the covers come from.
//
// Three implementations:
//   * InProcBackend  — wraps a CatalogService (plus the spec/view-name
//     resolution a CoverServer would do), no sockets at all;
//   * RemoteBackend  — wraps a CoverClient, with reconnect: a dropped
//     connection (socket deadline, server restart of the link) is
//     re-established on the next call and the backend *re-opens every
//     catalog it opened*, so open-catalog state survives the drop
//     (CoverServer's same-text re-open is idempotent);
//   * CoverRouter (src/net/cover_router.h) — consistent-hashes tenants
//     across N RemoteBackend shards.
//
// Semantics are aligned so the implementations are byte-comparable:
// a multi-batch SubmitBatches decides admission atomically (slot i
// answers batches[i], rejections are typed ResourceExhausted in the
// slot's status), an unknown view fails its batch alone with NotFound,
// an unknown tenant fails the whole call. Decoded covers intern into
// the caller-supplied pool on the wire paths; the in-process path
// serves them straight from the tenant's engine.
//
// Thread-safety: RemoteBackend is one conversation — use one per
// worker thread (connections are cheap). InProcBackend IS safe for
// concurrent callers: the service is thread-safe and the backend's own
// spec registry takes a lock, so the workload runner shares a single
// instance across its workers.

#ifndef CFDPROP_NET_COVER_BACKEND_H_
#define CFDPROP_NET_COVER_BACKEND_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"
#include "src/net/cover_client.h"
#include "src/net/wire_protocol.h"
#include "src/parser/parser.h"
#include "src/service/batch_result.h"
#include "src/service/catalog_service.h"

namespace cfdprop {
namespace net {

class CoverBackend {
 public:
  virtual ~CoverBackend() = default;

  /// Opens a tenant from spec text; the spec's source CFDs become Σ 0
  /// and submit-batch view names resolve against its declared views.
  virtual Result<OpenCatalogReplyInfo> OpenCatalog(
      const std::string& tenant, const std::string& spec_text) = 0;

  /// Pipelined burst: slot i answers batches[i]; admission for the
  /// whole burst is decided atomically, so the admit/reject pattern is
  /// deterministic. Wire-crossing covers intern constants into `pool`.
  virtual Result<std::vector<BatchResult>> SubmitBatches(
      const std::string& tenant,
      const std::vector<std::vector<std::string>>& batches,
      ValuePool& pool) = 0;

  /// Single-batch convenience over SubmitBatches.
  Result<BatchResult> SubmitBatch(const std::string& tenant,
                                  const std::vector<std::string>& views,
                                  ValuePool& pool);

  virtual Result<WireServiceStats> Stats() = 0;

  /// The full Prometheus-style text exposition.
  virtual Result<std::string> Metrics() = 0;

  virtual Status DropCatalog(const std::string& tenant) = 0;
};

/// CoverBackend over an in-process CatalogService: parses specs,
/// resolves view names and folds the service's futures into
/// BatchResults — everything a CoverServer does per frame, minus the
/// frames. The service must outlive the backend. Several InProcBackend
/// instances may share one service (each keeps only resolution state).
class InProcBackend : public CoverBackend {
 public:
  explicit InProcBackend(CatalogService& service) : service_(service) {}

  Result<OpenCatalogReplyInfo> OpenCatalog(
      const std::string& tenant, const std::string& spec_text) override;

  /// The hook for specs that exist only programmatically (the workload
  /// generators build Spec structs, never text).
  Result<OpenCatalogReplyInfo> OpenParsedSpec(const std::string& tenant,
                                              Spec spec);

  Result<std::vector<BatchResult>> SubmitBatches(
      const std::string& tenant,
      const std::vector<std::vector<std::string>>& batches,
      ValuePool& pool) override;

  Result<WireServiceStats> Stats() override;
  Result<std::string> Metrics() override;
  Status DropCatalog(const std::string& tenant) override;

  CatalogService& service() { return service_; }

 private:
  CatalogService& service_;
  std::mutex specs_mu_;
  /// Tenant -> parsed spec for view-name resolution (the InProc
  /// counterpart of CoverServer's spec registry). Guarded by specs_mu_.
  std::map<std::string, std::shared_ptr<const Spec>> specs_;
};

/// CoverBackend over a CoverClient. Lazily connects on first use, and
/// on every call re-establishes a dropped connection first — re-opening
/// every catalog this backend opened (the server's same-text re-open is
/// idempotent), which is the fix for the historical bug where a
/// DeadlineExceeded drop silently lost open-catalog state and the next
/// round died on "no spec registered".
class RemoteBackend : public CoverBackend {
 public:
  explicit RemoteBackend(CoverClientOptions options) : client_(options) {}

  Result<OpenCatalogReplyInfo> OpenCatalog(
      const std::string& tenant, const std::string& spec_text) override;

  Result<std::vector<BatchResult>> SubmitBatches(
      const std::string& tenant,
      const std::vector<std::vector<std::string>>& batches,
      ValuePool& pool) override;

  /// Submit under a caller-started trace (the router's edge) — the rpc
  /// span parents to `trace.parent_span_id`.
  Result<std::vector<BatchResult>> SubmitBatches(
      const std::string& tenant,
      const std::vector<std::vector<std::string>>& batches, ValuePool& pool,
      const obs::TraceContext& trace);

  Result<WireServiceStats> Stats() override;
  Result<std::string> Metrics() override;
  Status DropCatalog(const std::string& tenant) override;

  /// Reads the shard process's span rings back (see CoverClient).
  Result<std::vector<obs::SpanRecord>> TraceDump();

  /// Migration steps, forwarded to the shard with the same
  /// reconnect-and-reopen discipline as every other call.
  Result<std::string> FetchSnapshot(const std::string& tenant);
  Result<OpenCatalogReplyInfo> OpenFromSnapshot(const std::string& tenant,
                                                const std::string& spec_text,
                                                std::string_view snapshot);

  /// Asks the shard's server process to wind down.
  Status Shutdown();

  /// Connects now (otherwise the first call connects lazily).
  Status Connect() { return EnsureConnected(); }

  /// Drops the TCP connection without telling the server — the test
  /// hook for the reconnect path (a real drop comes from a socket
  /// deadline or a dying link). The next call reconnects and replays
  /// this backend's catalog opens.
  void CloseConnection() { client_.Close(); }

  bool connected() const { return client_.connected(); }

 private:
  /// Connect + replay the remembered catalog opens when the connection
  /// is down; no-op while it is up.
  Status EnsureConnected();

  CoverClient client_;
  /// Tenant -> spec text this backend opened, replayed on reconnect.
  std::map<std::string, std::string> opened_;
};

}  // namespace net
}  // namespace cfdprop

#endif  // CFDPROP_NET_COVER_BACKEND_H_
