#include "src/net/cover_backend.h"

#include <utility>

namespace cfdprop {
namespace net {

Result<BatchResult> CoverBackend::SubmitBatch(
    const std::string& tenant, const std::vector<std::string>& views,
    ValuePool& pool) {
  CFDPROP_ASSIGN_OR_RETURN(std::vector<BatchResult> batches,
                           SubmitBatches(tenant, {views}, pool));
  if (batches.size() != 1) {
    return Status::Internal("backend answered " +
                            std::to_string(batches.size()) +
                            " batches for a single submit");
  }
  return std::move(batches.front());
}

// ---------------------------------------------------------------------------
// InProcBackend

Result<OpenCatalogReplyInfo> InProcBackend::OpenCatalog(
    const std::string& tenant, const std::string& spec_text) {
  CFDPROP_ASSIGN_OR_RETURN(Spec spec, ParseSpec(spec_text));
  return OpenParsedSpec(tenant, std::move(spec));
}

Result<OpenCatalogReplyInfo> InProcBackend::OpenParsedSpec(
    const std::string& tenant, Spec spec) {
  // Σ 0 is the spec's source CFDs — the id every submitted batch serves
  // against, exactly as CoverServer registers it.
  std::vector<std::vector<CFD>> sigmas = {spec.source_cfds};
  Catalog catalog = std::move(spec.catalog);
  CFDPROP_ASSIGN_OR_RETURN(
      TenantHandle handle,
      service_.OpenCatalog(tenant, std::move(catalog), std::move(sigmas)));
  {
    std::lock_guard<std::mutex> lock(specs_mu_);
    specs_[tenant] = std::make_shared<const Spec>(std::move(spec));
  }
  OpenCatalogReplyInfo info;
  const CacheStats cache = handle->engine().Stats().cache;
  info.restored = cache.restored;
  info.rejected = cache.rejected;
  info.cache_budget = handle->cache_budget();
  return info;
}

Result<std::vector<BatchResult>> InProcBackend::SubmitBatches(
    const std::string& tenant,
    const std::vector<std::vector<std::string>>& batches, ValuePool& pool) {
  // The in-process path serves covers straight out of the tenant's own
  // pool; the caller's pool is only for wire-crossing backends.
  (void)pool;
  CFDPROP_ASSIGN_OR_RETURN(TenantHandle handle,
                           service_.ResolveCatalog(tenant));
  (void)handle;
  std::shared_ptr<const Spec> spec;
  {
    std::lock_guard<std::mutex> lock(specs_mu_);
    auto it = specs_.find(tenant);
    if (it != specs_.end()) spec = it->second;
  }
  if (!spec) {
    return Status::NotFound("tenant '" + tenant +
                            "' has no spec registered with this backend");
  }

  // View-name resolution mirrors CoverServer::HandleSubmitBatch: a batch
  // naming an unknown view fails alone with a typed NotFound and is
  // never submitted; its siblings still run.
  std::vector<BatchResult> outcomes(batches.size());
  std::vector<std::vector<Engine::Request>> to_submit;
  std::vector<size_t> submit_slot;
  for (size_t i = 0; i < batches.size(); ++i) {
    std::vector<Engine::Request> requests;
    requests.reserve(batches[i].size());
    Status resolved = Status::OK();
    for (const std::string& view : batches[i]) {
      auto it = spec->views.find(view);
      if (it == spec->views.end()) {
        resolved = Status::NotFound("unknown view '" + view +
                                    "' in tenant '" + tenant + "'");
        break;
      }
      requests.emplace_back(it->second, /*sigma_id=*/0);
    }
    if (!resolved.ok()) {
      outcomes[i].status = std::move(resolved);
      continue;
    }
    submit_slot.push_back(i);
    to_submit.push_back(std::move(requests));
  }

  // This backend is the trace edge for the in-process path: the
  // "request" span covers submit through the last future resolution —
  // the same window the wire path's "rpc" span covers.
  obs::Tracer* tracer = obs::ProcessTracer();
  obs::TraceContext trace;
  obs::TraceContext child;
  uint64_t span_id = 0;
  uint64_t start_us = 0;
  bool timed = false;
  if (tracer != nullptr) {
    trace = tracer->StartTrace();
    timed = trace.sampled || tracer->slow_enabled();
    if (timed) {
      span_id = tracer->NewSpanId();
      start_us = tracer->NowUs();
    }
    if (trace.sampled) {
      child.trace_id = trace.trace_id;
      child.parent_span_id = span_id;
      child.sampled = true;
    }
  }

  // One SubmitBatches call: the burst's admission is decided atomically,
  // so the admit/reject pattern matches the wire path byte for byte.
  auto submitted = service_.SubmitBatches(tenant, std::move(to_submit), child);
  for (size_t k = 0; k < submitted.size(); ++k) {
    BatchResult& out = outcomes[submit_slot[k]];
    if (!submitted[k].ok()) {
      out.status = submitted[k].status();
      continue;
    }
    out.results = submitted[k].value().get().results;
  }
  if (timed) {
    tracer->RecordEdge(trace, span_id, "request", start_us,
                       tracer->NowUs() - start_us, tenant);
  }
  return outcomes;
}

Result<WireServiceStats> InProcBackend::Stats() {
  const ServiceStatsSnapshot s = service_.Stats();
  WireServiceStats w;
  w.global_cache_budget = s.global_cache_budget;
  w.batches_submitted = s.batches_submitted;
  w.batches_completed = s.batches_completed;
  w.batches_rejected = s.batches_rejected;
  w.tenants.reserve(s.tenants.size());
  for (const TenantStatsSnapshot& t : s.tenants) {
    WireTenantStats wt;
    wt.name = t.name;
    wt.cache_budget = t.cache_budget;
    wt.batches_submitted = t.batches_submitted;
    wt.admitted = t.admitted;
    wt.admission_rejected = t.admission_rejected;
    wt.queued = t.queued;
    wt.running = t.running;
    wt.engine_text = t.engine.ToString();
    w.tenants.push_back(std::move(wt));
  }
  return w;
}

Result<std::string> InProcBackend::Metrics() {
  return service_.RenderMetricsText();
}

Status InProcBackend::DropCatalog(const std::string& tenant) {
  Status dropped = service_.DropCatalog(tenant);
  if (dropped.ok()) {
    std::lock_guard<std::mutex> lock(specs_mu_);
    specs_.erase(tenant);
  }
  return dropped;
}

// ---------------------------------------------------------------------------
// RemoteBackend

Status RemoteBackend::EnsureConnected() {
  if (client_.connected()) return Status::OK();
  CFDPROP_RETURN_NOT_OK(client_.Connect());
  // Replay this backend's catalog opens so the conversation resumes
  // where the dropped one left off; the server's same-text re-open is
  // idempotent, so a catalog that survived server-side is a no-op.
  for (const auto& [tenant, spec_text] : opened_) {
    auto reopened = client_.OpenCatalog(tenant, spec_text);
    if (!reopened.ok()) {
      client_.Close();
      return reopened.status();
    }
  }
  return Status::OK();
}

Result<OpenCatalogReplyInfo> RemoteBackend::OpenCatalog(
    const std::string& tenant, const std::string& spec_text) {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  CFDPROP_ASSIGN_OR_RETURN(OpenCatalogReplyInfo info,
                           client_.OpenCatalog(tenant, spec_text));
  opened_[tenant] = spec_text;
  return info;
}

Result<std::vector<BatchResult>> RemoteBackend::SubmitBatches(
    const std::string& tenant,
    const std::vector<std::vector<std::string>>& batches, ValuePool& pool) {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  return client_.SubmitBatches(tenant, batches, pool);
}

Result<std::vector<BatchResult>> RemoteBackend::SubmitBatches(
    const std::string& tenant,
    const std::vector<std::vector<std::string>>& batches, ValuePool& pool,
    const obs::TraceContext& trace) {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  return client_.SubmitBatches(tenant, batches, pool, trace);
}

Result<std::vector<obs::SpanRecord>> RemoteBackend::TraceDump() {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  return client_.TraceDump();
}

Result<WireServiceStats> RemoteBackend::Stats() {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  return client_.Stats();
}

Result<std::string> RemoteBackend::Metrics() {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  return client_.Metrics();
}

Status RemoteBackend::DropCatalog(const std::string& tenant) {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  Status dropped = client_.DropCatalog(tenant);
  if (dropped.ok()) opened_.erase(tenant);
  return dropped;
}

Result<std::string> RemoteBackend::FetchSnapshot(const std::string& tenant) {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  return client_.FetchSnapshot(tenant);
}

Result<OpenCatalogReplyInfo> RemoteBackend::OpenFromSnapshot(
    const std::string& tenant, const std::string& spec_text,
    std::string_view snapshot) {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  CFDPROP_ASSIGN_OR_RETURN(
      OpenCatalogReplyInfo info,
      client_.OpenFromSnapshot(tenant, spec_text, snapshot));
  opened_[tenant] = spec_text;
  return info;
}

Status RemoteBackend::Shutdown() {
  CFDPROP_RETURN_NOT_OK(EnsureConnected());
  return client_.Shutdown();
}

}  // namespace net
}  // namespace cfdprop
