// The cover-serving wire protocol: versioned, checksummed, little-endian
// frames carrying catalog-service requests and replies over a byte
// stream (TCP in practice — the codec itself never touches a socket).
//
// Frame layout (all integers fixed-width little-endian, helpers in
// src/base/wire.h):
//
//   magic[4]    "CFDW"
//   version u32 kWireVersion; any other value rejects the frame
//   type    u8  FrameType
//   length  u32 payload byte count; bounded by kMaxFramePayload, so a
//               corrupt prefix can never coax a reader into a
//               multi-gigabyte allocation
//   payload     `length` bytes
//   checksum u64 FNV-1a (src/base/hash.h) over every preceding byte of
//               the frame; catches truncation and bit rot before any
//               payload field is trusted
//
// Every request frame gets exactly one reply frame (type = request type
// with kReplyBit set). Every reply payload begins with a wire-encoded
// Status — StatusCode survives the trip, so CoverClient hands callers
// the same typed errors (NotFound, ResourceExhausted, ...) an
// in-process CatalogService call would return.
//
// Covers travel in the PR 3 snapshot encoding: pattern constants are
// string-table indices into a per-reply first-use-ordered table, never
// process-local Value ids — the decoding side re-interns into its own
// ValuePool (CFD::FromSnapshotBytes), so client and server pools need
// share nothing. Equal covers encode to equal bytes, which is what the
// loopback differential test diffs.
//
// Decode discipline: every reader is bounds-checked and returns a clean
// Status on malformed input (oversized length, truncation, bad
// magic/version, checksum mismatch). A server maps such a Status to
// "close this connection"; it never crashes or trusts a partial frame.
//
// Versioning policy matches the snapshot format: kWireVersion bumps on
// ANY layout change, no compatibility shims — a version-mismatched peer
// is simply refused.

#ifndef CFDPROP_NET_WIRE_PROTOCOL_H_
#define CFDPROP_NET_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"
#include "src/engine/engine.h"
#include "src/obs/trace.h"
#include "src/service/batch_result.h"

namespace cfdprop {
namespace net {

inline constexpr char kWireMagic[4] = {'C', 'F', 'D', 'W'};
/// v2: added the METRICS frame (kMetrics / kMetricsReply). Same frame
/// layout, but a v1 peer would treat type 6 as malformed and close the
/// connection, so the version gate keeps the refusal explicit.
/// v3: added the migration frames (kFetchSnapshot / kOpenFromSnapshot)
/// and the kUnavailable status code a router returns mid-route-flip.
/// v4: submit-batch requests carry an optional trace block (trace id +
/// parent span id + sampled flag) and the TRACE_DUMP frame reads a
/// process's span rings back.
inline constexpr uint32_t kWireVersion = 4;

/// magic + version + type + payload length.
inline constexpr size_t kFrameHeaderBytes = 4 + 4 + 1 + 4;
inline constexpr size_t kFrameTrailerBytes = 8;

/// Upper bound on one frame's payload (16 MiB): far above any real
/// request or reply, far below anything that could hurt the process.
inline constexpr uint32_t kMaxFramePayload = 1u << 24;

/// Reply types are the request type with this bit set.
inline constexpr uint8_t kReplyBit = 0x80;

enum class FrameType : uint8_t {
  kOpenCatalog = 1,
  kSubmitBatch = 2,
  kStats = 3,
  kDropCatalog = 4,
  kShutdown = 5,
  /// Scrape: empty request payload; the reply carries the server's
  /// Prometheus-style text exposition (src/obs).
  kMetrics = 6,
  /// Migration, step 1: drain the tenant's queue server-side and ship
  /// its cover cache as snapshot bytes (the .ccsnap encoding).
  kFetchSnapshot = 7,
  /// Migration, step 2: open a tenant from spec text *plus* snapshot
  /// bytes, warm-starting its cache on the target shard.
  kOpenFromSnapshot = 8,
  /// Trace dump: empty request payload; the reply carries the server
  /// process's span rings (main + slow) in the string-table encoding.
  kTraceDump = 9,

  kOpenCatalogReply = kOpenCatalog | kReplyBit,
  kSubmitBatchReply = kSubmitBatch | kReplyBit,
  kStatsReply = kStats | kReplyBit,
  kDropCatalogReply = kDropCatalog | kReplyBit,
  kShutdownReply = kShutdown | kReplyBit,
  kMetricsReply = kMetrics | kReplyBit,
  kFetchSnapshotReply = kFetchSnapshot | kReplyBit,
  kOpenFromSnapshotReply = kOpenFromSnapshot | kReplyBit,
  kTraceDumpReply = kTraceDump | kReplyBit,
};

struct FrameHeader {
  FrameType type = FrameType::kShutdown;
  uint32_t payload_len = 0;
};

/// Assembles a complete frame (header + payload + checksum trailer).
/// Precondition: payload.size() <= kMaxFramePayload.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Parses and validates the fixed-size header (magic, version, length
/// bound, known type). `bytes` must hold at least kFrameHeaderBytes.
/// This is what a stream reader calls first, to learn how many payload
/// bytes to read — so it runs before any checksum can be verified.
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes);

/// Validates a complete frame end to end (header + checksum) and
/// returns a view of its payload.
Result<std::string_view> VerifyFrame(std::string_view frame);

// --------------------------------------------------------------------
// Payload codecs. Requests are tiny and flat; replies all start with a
// wire-encoded Status.
// --------------------------------------------------------------------

struct OpenCatalogRequest {
  std::string tenant;
  /// Spec text (src/parser syntax): the server parses it, opens the
  /// tenant with the spec's source CFDs as sigma 0, and resolves later
  /// submit-batch view names against the spec's declared views.
  std::string spec_text;
};

struct OpenCatalogReplyInfo {
  /// Warm-start outcome (cover-cache lines) and the tenant's cache
  /// budget after the open's rebalance.
  uint64_t restored = 0;
  uint64_t rejected = 0;
  uint64_t cache_budget = 0;
};

struct SubmitBatchRequest {
  std::string tenant;
  /// One entry per batch (a multi-entry request is a pipelined burst:
  /// the server decides every batch's admission atomically, so the
  /// admit/reject pattern is deterministic); each batch is a list of
  /// view names from the tenant's spec, served in order.
  std::vector<std::vector<std::string>> batches;
  /// Optional trace block (v4): a zero trace_id encodes as "absent" —
  /// one flag byte — so untraced traffic pays one byte, not the ids.
  /// `parent_span_id` is the client's rpc span, which every server-side
  /// span of this request parents to.
  obs::TraceContext trace;
};

/// One batch's outcome: the admission/resolution status, and — when
/// admitted — per-request results carrying decoded covers. The same
/// struct the in-process service's BatchReply derives from, so covers
/// cross the inproc/wire boundary without conversion.
using WireBatchResult = ::cfdprop::BatchResult;

struct WireTenantStats {
  std::string name;
  uint64_t cache_budget = 0;
  uint64_t batches_submitted = 0;
  uint64_t admitted = 0;
  uint64_t admission_rejected = 0;
  uint64_t queued = 0;
  uint64_t running = 0;
  /// The engine's EngineStatsSnapshot::ToString() line — the CLI prints
  /// it verbatim, so network and in-process serving grep identically.
  std::string engine_text;
};

struct WireServiceStats {
  uint64_t global_cache_budget = 0;
  uint64_t batches_submitted = 0;
  uint64_t batches_completed = 0;
  uint64_t batches_rejected = 0;
  std::vector<WireTenantStats> tenants;
};

void EncodeStatus(std::string& out, const Status& status);
/// Bounds-checked; decodes the StatusCode back to the typed Status.
bool DecodeStatus(std::string_view in, size_t* pos, Status* status);

std::string EncodeOpenCatalogRequest(const OpenCatalogRequest& request);
Result<OpenCatalogRequest> DecodeOpenCatalogRequest(std::string_view payload);

std::string EncodeOpenCatalogReply(const Status& status,
                                   const OpenCatalogReplyInfo& info);
Result<OpenCatalogReplyInfo> DecodeOpenCatalogReply(std::string_view payload);

std::string EncodeSubmitBatchRequest(const SubmitBatchRequest& request);
Result<SubmitBatchRequest> DecodeSubmitBatchRequest(std::string_view payload);

/// `status` is the whole-frame outcome (unknown tenant, unknown view);
/// per-batch admission rejections ride inside `batches`. `pool` is the
/// serving tenant's pool, used to export pattern-constant texts into
/// the reply's string table. Deterministic: equal outcomes and covers
/// encode to equal bytes.
std::string EncodeSubmitBatchReply(const Status& status,
                                   const std::vector<WireBatchResult>& batches,
                                   const ValuePool& pool);
/// Decoded covers intern their constants into `pool` (the caller's own,
/// typically a client-side catalog's). Timing fields come back zeroed —
/// the wire carries results, not the server's clock.
Result<std::vector<WireBatchResult>> DecodeSubmitBatchReply(
    std::string_view payload, ValuePool& pool);

std::string EncodeStringRequest(std::string_view text);
Result<std::string> DecodeStringRequest(std::string_view payload);

// Migration frames. FETCH_SNAPSHOT's request is EncodeStringRequest
// (the tenant name); the server drains the tenant's queue and replies
// with its cover cache serialized in the .ccsnap format. A snapshot
// too large to frame (past kMaxFramePayload) degrades to a typed
// ResourceExhausted reply, like any oversized reply.
std::string EncodeFetchSnapshotReply(const Status& status,
                                     std::string_view snapshot);
Result<std::string> DecodeFetchSnapshotReply(std::string_view payload);

struct OpenFromSnapshotRequest {
  std::string tenant;
  /// Spec text, parsed exactly as an OPEN_CATALOG's would be.
  std::string spec_text;
  /// .ccsnap bytes to warm-start the tenant's cover cache from; lines
  /// that fail the usual Σ-fingerprint gate are rejected, not fatal.
  std::string snapshot;
};

/// OPEN_FROM_SNAPSHOT's reply reuses the OPEN_CATALOG reply codec
/// (restored/rejected report the warm-start outcome).
std::string EncodeOpenFromSnapshotRequest(
    const OpenFromSnapshotRequest& request);
Result<OpenFromSnapshotRequest> DecodeOpenFromSnapshotRequest(
    std::string_view payload);

std::string EncodeStatusReply(const Status& status);
Status DecodeStatusReply(std::string_view payload);

std::string EncodeStatsReply(const Status& status,
                             const WireServiceStats& stats);
Result<WireServiceStats> DecodeStatsReply(std::string_view payload);

/// METRICS reply: Status + the exposition text. Oversized scrapes (past
/// kMaxFramePayload once framed) must be degraded by the caller like
/// any other reply.
std::string EncodeMetricsReply(const Status& status, std::string_view text);
Result<std::string> DecodeMetricsReply(std::string_view payload);

// TRACE_DUMP: empty request payload; the reply carries every published
// span of the server's rings. Span names/tenants/annotations travel as
// indices into a first-use-ordered string table (the snapshot format's
// discipline — equal span sets encode to equal bytes, which is what the
// deterministic-dump test diffs).
Status DecodeTraceDumpRequest(std::string_view payload);
std::string EncodeTraceDumpReply(const Status& status,
                                 const std::vector<obs::SpanRecord>& spans);
Result<std::vector<obs::SpanRecord>> DecodeTraceDumpReply(
    std::string_view payload);

}  // namespace net
}  // namespace cfdprop

#endif  // CFDPROP_NET_WIRE_PROTOCOL_H_
