// CoverRouter: the sharded routing tier — one CoverBackend in front of
// N CoverServer shards.
//
// Placement is a consistent-hash ring: every shard contributes
// `virtual_nodes` points (FNV-1a over "shard#replica"), a tenant lands
// on the first ring point clockwise of the hash of its name. Adding a
// shard therefore moves ~1/N of the tenants instead of rehashing the
// world, and the placement is a pure function of the shard list — every
// router over the same shards routes identically, no coordination.
//
// On top of the ring sits a per-tenant override map, which is what
// makes tenants *movable*: a live migration drains the tenant on its
// source shard, ships its cover cache as .ccsnap snapshot bytes over
// the wire, warm-starts the tenant on the target, then flips the
// override atomically. During the move the tenant is marked migrating
// and its submits fail fast with typed kUnavailable ("retry"), so a
// caller that retries sees zero failed submits — covers served before
// the flip come from the source generation, after it from the target's
// warm-started cache, and nothing in between is lost or doubled.
//
// The full MigrateTenant orchestration needs the tenant's spec text
// (recorded at OpenCatalog) to re-open it on the target; tenants opened
// behind the router's back have none and get typed Unsupported. Callers
// whose specs exist only programmatically (the workload runner) use the
// decomposed steps — Begin/FetchSnapshotFrom/Complete/Abort — and
// warm-start the target themselves via CoverServer::OpenParsedSpecFromSnapshot.
//
// Thread-safety: unlike the single-conversation backends, the router IS
// safe for concurrent callers — route state lives under one mutex and
// each shard's RemoteBackend (one conversation) is serialized by its
// own lock. Stats()/Metrics() aggregate across every shard.

#ifndef CFDPROP_NET_COVER_ROUTER_H_
#define CFDPROP_NET_COVER_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/net/cover_backend.h"

namespace cfdprop {
namespace net {

struct CoverRouterOptions {
  /// One client config per shard; shard index = position in this list.
  std::vector<CoverClientOptions> shards;

  /// Ring points per shard. More points = smoother balance, slower ring
  /// build; 64 keeps the spread within a few percent for small N.
  size_t virtual_nodes = 64;
};

/// What a completed live migration did.
struct MigrationReport {
  size_t from = 0;
  size_t to = 0;
  /// The target's warm-start outcome: snapshot lines restored into its
  /// cache vs. rejected (stale generation / unknown fingerprint).
  uint64_t restored = 0;
  uint64_t rejected = 0;
  /// Size of the .ccsnap byte image that crossed the wire.
  uint64_t snapshot_bytes = 0;
};

class CoverRouter : public CoverBackend {
 public:
  explicit CoverRouter(CoverRouterOptions options);

  /// Routes to the tenant's shard and records the spec text so a later
  /// MigrateTenant can re-open the tenant on its target.
  Result<OpenCatalogReplyInfo> OpenCatalog(
      const std::string& tenant, const std::string& spec_text) override;

  /// Forwards to the tenant's shard. While the tenant is migrating the
  /// call fails fast with typed kUnavailable — retry after the flip.
  Result<std::vector<BatchResult>> SubmitBatches(
      const std::string& tenant,
      const std::vector<std::vector<std::string>>& batches,
      ValuePool& pool) override;

  /// Cluster-wide aggregate: counters summed over shards, tenant rows
  /// concatenated (re-sorted by name, as a single fat server would
  /// report them).
  Result<WireServiceStats> Stats() override;

  /// One merged exposition: every shard's families are folded into a
  /// single family set with a `shard="N"` label injected as each
  /// series' first label (family help/type text comes from the first
  /// shard that exposes it; per-shard series order is preserved, shards
  /// in index order), followed by the router's own registry
  /// (cfdprop_router_* counters, no shard label — they belong to this
  /// tier). The output parses with obs::ParseMetricsText like any
  /// single server's scrape.
  Result<std::string> Metrics() override;

  /// One shard's span rings (see RemoteBackend::TraceDump), each record
  /// stamped with the shard index it came from — the raw material the
  /// route CLI stitches into cross-shard trees.
  Result<std::vector<obs::SpanRecord>> TraceDumpFrom(size_t shard);

  Status DropCatalog(const std::string& tenant) override;

  /// The whole migration in one call: mark migrating -> drain + fetch
  /// the snapshot from the source -> warm-start on `target_shard` ->
  /// flip the route -> drop the source copy. On any failure the
  /// migrating mark is cleared and the old route kept (the tenant keeps
  /// serving from the source). Unsupported when the router has no spec
  /// text for the tenant; InvalidArgument when `target_shard` is out of
  /// range or already the tenant's shard.
  Result<MigrationReport> MigrateTenant(const std::string& tenant,
                                        size_t target_shard);

  // Decomposed migration steps, for callers that must warm-start the
  // target themselves (specs with no text form).

  /// Marks the tenant migrating: its submits fail with kUnavailable
  /// until Complete/AbortMigration. Fails if already migrating.
  Status BeginMigration(const std::string& tenant);
  /// Flips the tenant's route to `shard` and clears the migrating mark.
  Status CompleteMigration(const std::string& tenant, size_t shard);
  /// Clears the migrating mark, keeping the old route.
  void AbortMigration(const std::string& tenant);

  /// Wire steps against an explicit shard (the shard's server drains
  /// the tenant before serializing).
  Result<std::string> FetchSnapshotFrom(size_t shard,
                                        const std::string& tenant);
  Result<OpenCatalogReplyInfo> OpenFromSnapshotOn(size_t shard,
                                                  const std::string& tenant,
                                                  const std::string& spec_text,
                                                  std::string_view snapshot);
  Status DropCatalogOn(size_t shard, const std::string& tenant);

  /// The shard currently serving `tenant` (override if one exists, ring
  /// placement otherwise).
  size_t ShardFor(const std::string& tenant) const;

  size_t num_shards() const { return shards_.size(); }

  /// Asks every shard's server to wind down; the first failure wins but
  /// every shard is still asked.
  Status ShutdownAll();

 private:
  /// Ring placement only (ignores overrides). Requires a built ring.
  size_t RingShardFor(const std::string& tenant) const;

  /// Serialized access to one shard's single-conversation backend.
  template <typename Fn>
  auto WithShard(size_t shard, Fn&& fn) {
    std::lock_guard<std::mutex> lock(shards_[shard]->mu);
    return fn(shards_[shard]->backend);
  }

  struct Shard {
    explicit Shard(CoverClientOptions options)
        : backend(std::move(options)) {}
    std::mutex mu;
    RemoteBackend backend;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  /// (point, shard), sorted by point. Immutable after construction.
  std::vector<std::pair<uint64_t, size_t>> ring_;

  /// The router tier's own counters, rendered after the merged shard
  /// families in Metrics().
  obs::MetricsRegistry metrics_;
  obs::Counter* migrations_total_ = nullptr;   // completed MigrateTenant calls
  obs::Counter* batches_routed_ = nullptr;     // batches forwarded to a shard
  obs::Counter* submits_bounced_ = nullptr;    // submits refused mid-migration

  mutable std::mutex route_mu_;
  /// Tenants moved off their ring placement. Guarded by route_mu_.
  std::map<std::string, size_t> overrides_;
  /// Tenants mid-migration (submits bounce with kUnavailable).
  std::set<std::string> migrating_;
  /// Tenant -> spec text recorded at OpenCatalog, what MigrateTenant
  /// re-opens the tenant with on its target shard.
  std::map<std::string, std::string> spec_texts_;
};

}  // namespace net
}  // namespace cfdprop

#endif  // CFDPROP_NET_COVER_ROUTER_H_
