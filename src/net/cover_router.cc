#include "src/net/cover_router.h"

#include <algorithm>
#include <cstdio>

namespace cfdprop {
namespace net {

namespace {

/// FNV-1a, 64-bit, with a murmur-style avalanche finalizer. Raw FNV-1a
/// diffuses the last byte through a single multiply, so names sharing a
/// prefix ("tenant0", "tenant1", ...) land on adjacent ring points and
/// can starve whole shards; the finalizer spreads them uniformly.
uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

CoverRouter::CoverRouter(CoverRouterOptions options) {
  migrations_total_ = metrics_.GetCounter(
      "cfdprop_router_migrations_total", "Completed tenant migrations");
  batches_routed_ = metrics_.GetCounter(
      "cfdprop_router_batches_routed_total",
      "Batches forwarded to a shard by the router");
  submits_bounced_ = metrics_.GetCounter(
      "cfdprop_router_submits_bounced_total",
      "Submit calls refused with kUnavailable during a migration");
  shards_.reserve(options.shards.size());
  for (CoverClientOptions& shard : options.shards) {
    shards_.push_back(std::make_unique<Shard>(std::move(shard)));
  }
  const size_t vnodes = std::max<size_t>(1, options.virtual_nodes);
  ring_.reserve(shards_.size() * vnodes);
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    for (size_t replica = 0; replica < vnodes; ++replica) {
      // The point depends on the shard's *position*, not its address:
      // every router over the same shard list routes identically.
      const std::string key =
          std::to_string(shard) + "#" + std::to_string(replica);
      ring_.emplace_back(Fnv1a(key), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t CoverRouter::RingShardFor(const std::string& tenant) const {
  const uint64_t point = Fnv1a(tenant);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<uint64_t, size_t>& entry, uint64_t value) {
        return entry.first < value;
      });
  if (it == ring_.end()) it = ring_.begin();  // clockwise wrap
  return it->second;
}

size_t CoverRouter::ShardFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  auto it = overrides_.find(tenant);
  if (it != overrides_.end()) return it->second;
  return RingShardFor(tenant);
}

Result<OpenCatalogReplyInfo> CoverRouter::OpenCatalog(
    const std::string& tenant, const std::string& spec_text) {
  const size_t shard = ShardFor(tenant);
  auto info = WithShard(shard, [&](RemoteBackend& backend) {
    return backend.OpenCatalog(tenant, spec_text);
  });
  if (info.ok()) {
    std::lock_guard<std::mutex> lock(route_mu_);
    spec_texts_[tenant] = spec_text;
  }
  return info;
}

Result<std::vector<BatchResult>> CoverRouter::SubmitBatches(
    const std::string& tenant,
    const std::vector<std::vector<std::string>>& batches, ValuePool& pool) {
  size_t shard;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (migrating_.count(tenant) != 0) {
      // Fail fast, typed: the tenant is mid-flight between shards and
      // neither copy is authoritative. The caller retries after the
      // route flip — that retry is the "zero failed submits" contract.
      submits_bounced_->Increment();
      return Status::Unavailable("tenant '" + tenant +
                                 "' is migrating; retry");
    }
    auto it = overrides_.find(tenant);
    shard = it != overrides_.end() ? it->second : RingShardFor(tenant);
  }
  batches_routed_->Add(batches.size());
  // With a process tracer installed the router is the trace edge: the
  // "route" span encloses the whole routed round trip, the shard
  // client's rpc span parents to it, and slow-request capture applies
  // here — the routed request's true end-to-end latency.
  obs::Tracer* tracer = obs::ProcessTracer();
  if (tracer == nullptr) {
    return WithShard(shard, [&](RemoteBackend& backend) {
      return backend.SubmitBatches(tenant, batches, pool);
    });
  }
  const obs::TraceContext trace = tracer->StartTrace();
  const bool timed = trace.sampled || tracer->slow_enabled();
  uint64_t span_id = 0;
  uint64_t start_us = 0;
  obs::TraceContext child;
  if (timed) {
    span_id = tracer->NewSpanId();
    start_us = tracer->NowUs();
  }
  if (trace.sampled) {
    child.trace_id = trace.trace_id;
    child.parent_span_id = span_id;
    child.sampled = true;
  }
  auto result = WithShard(shard, [&](RemoteBackend& backend) {
    return backend.SubmitBatches(tenant, batches, pool, child);
  });
  if (timed) {
    tracer->RecordEdge(trace, span_id, "route", start_us,
                       tracer->NowUs() - start_us, tenant,
                       static_cast<int32_t>(shard));
  }
  return result;
}

Result<WireServiceStats> CoverRouter::Stats() {
  WireServiceStats aggregate;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    auto stats = WithShard(shard, [](RemoteBackend& backend) {
      return backend.Stats();
    });
    if (!stats.ok()) return stats.status();
    aggregate.global_cache_budget += stats->global_cache_budget;
    aggregate.batches_submitted += stats->batches_submitted;
    aggregate.batches_completed += stats->batches_completed;
    aggregate.batches_rejected += stats->batches_rejected;
    for (WireTenantStats& t : stats->tenants) {
      aggregate.tenants.push_back(std::move(t));
    }
  }
  // Tenant-name order, as one fat server would report the same set.
  std::sort(aggregate.tenants.begin(), aggregate.tenants.end(),
            [](const WireTenantStats& a, const WireTenantStats& b) {
              return a.name < b.name;
            });
  return aggregate;
}

Result<std::string> CoverRouter::Metrics() {
  // Merge the shard scrapes into ONE family set: a family appearing on
  // several shards renders a single # HELP/# TYPE header (first shard's
  // text wins — they are the same build) and every shard's series under
  // it, each with `shard="N"` injected as its first label. Unlike the
  // old "# --- shard N ---" concatenation this parses as a single
  // scrape (obs::ParseMetricsText) and never repeats a family name.
  struct Family {
    std::string help;   // the full "# HELP ..." line
    std::string type;   // the full "# TYPE ..." line
    std::vector<std::string> series;  // shard-labeled, shards in order
  };
  std::vector<std::string> family_order;
  std::map<std::string, Family> families;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    auto text = WithShard(shard, [](RemoteBackend& backend) {
      return backend.Metrics();
    });
    if (!text.ok()) return text.status();
    const std::string shard_label = "shard=\"" + std::to_string(shard) + "\"";
    std::string current;  // family the series lines below belong to
    size_t pos = 0;
    while (pos < text->size()) {
      size_t eol = text->find('\n', pos);
      if (eol == std::string::npos) eol = text->size();
      std::string_view line(text->data() + pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        // "# HELP <name> ..." / "# TYPE <name> ...": open the family.
        std::string_view rest = line.substr(1);
        while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
        const bool is_help = rest.rfind("HELP ", 0) == 0;
        const bool is_type = rest.rfind("TYPE ", 0) == 0;
        if (!is_help && !is_type) continue;  // free-form comment: drop
        rest.remove_prefix(5);
        const size_t name_end = rest.find(' ');
        const std::string name(rest.substr(0, name_end));
        current = name;
        Family& f = families[name];
        if (f.help.empty() && f.type.empty()) family_order.push_back(name);
        if (is_help && f.help.empty()) f.help = std::string(line);
        if (is_type && f.type.empty()) f.type = std::string(line);
        continue;
      }
      // A series line: `name value` or `name{labels} value`. Inject the
      // shard label first so every shard's series stay distinct.
      const size_t brace = line.find('{');
      const size_t space = line.find(' ');
      std::string labeled;
      if (brace != std::string_view::npos && brace < space) {
        labeled = std::string(line.substr(0, brace + 1)) + shard_label +
                  (line[brace + 1] == '}' ? "" : ",") +
                  std::string(line.substr(brace + 1));
      } else {
        labeled = std::string(line.substr(0, space)) + "{" + shard_label +
                  "}" + std::string(line.substr(space));
      }
      families[current].series.push_back(std::move(labeled));
    }
  }
  std::string merged;
  for (const std::string& name : family_order) {
    const Family& f = families[name];
    if (!f.help.empty()) merged += f.help + "\n";
    if (!f.type.empty()) merged += f.type + "\n";
    for (const std::string& s : f.series) merged += s + "\n";
  }
  // The router tier's own counters close the scrape, unlabeled — they
  // belong to this process, not to any shard.
  merged += metrics_.RenderText();
  return merged;
}

Result<std::vector<obs::SpanRecord>> CoverRouter::TraceDumpFrom(size_t shard) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  auto spans = WithShard(shard, [](RemoteBackend& backend) {
    return backend.TraceDump();
  });
  if (!spans.ok()) return spans.status();
  for (obs::SpanRecord& span : *spans) {
    if (span.shard < 0) span.shard = static_cast<int32_t>(shard);
  }
  return spans;
}

Status CoverRouter::DropCatalog(const std::string& tenant) {
  size_t shard;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (migrating_.count(tenant) != 0) {
      return Status::Unavailable("tenant '" + tenant +
                                 "' is migrating; retry");
    }
    auto it = overrides_.find(tenant);
    shard = it != overrides_.end() ? it->second : RingShardFor(tenant);
  }
  Status dropped = WithShard(shard, [&](RemoteBackend& backend) {
    return backend.DropCatalog(tenant);
  });
  if (dropped.ok()) {
    std::lock_guard<std::mutex> lock(route_mu_);
    overrides_.erase(tenant);
    spec_texts_.erase(tenant);
  }
  return dropped;
}

Status CoverRouter::BeginMigration(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(route_mu_);
  if (!migrating_.insert(tenant).second) {
    return Status::Unavailable("tenant '" + tenant +
                               "' is already migrating");
  }
  return Status::OK();
}

Status CoverRouter::CompleteMigration(const std::string& tenant,
                                      size_t shard) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  std::lock_guard<std::mutex> lock(route_mu_);
  // The route flip: one map store under the lock — a submit observes
  // either the old shard or the new one, never a torn in-between.
  if (RingShardFor(tenant) == shard) {
    overrides_.erase(tenant);  // back on its natural placement
  } else {
    overrides_[tenant] = shard;
  }
  migrating_.erase(tenant);
  return Status::OK();
}

void CoverRouter::AbortMigration(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(route_mu_);
  migrating_.erase(tenant);
}

Result<std::string> CoverRouter::FetchSnapshotFrom(size_t shard,
                                                   const std::string& tenant) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  return WithShard(shard, [&](RemoteBackend& backend) {
    return backend.FetchSnapshot(tenant);
  });
}

Result<OpenCatalogReplyInfo> CoverRouter::OpenFromSnapshotOn(
    size_t shard, const std::string& tenant, const std::string& spec_text,
    std::string_view snapshot) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  return WithShard(shard, [&](RemoteBackend& backend) {
    return backend.OpenFromSnapshot(tenant, spec_text, snapshot);
  });
}

Status CoverRouter::DropCatalogOn(size_t shard, const std::string& tenant) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  return WithShard(shard, [&](RemoteBackend& backend) {
    return backend.DropCatalog(tenant);
  });
}

Result<MigrationReport> CoverRouter::MigrateTenant(const std::string& tenant,
                                                   size_t target_shard) {
  if (target_shard >= shards_.size()) {
    return Status::InvalidArgument("target shard " +
                                   std::to_string(target_shard) +
                                   " out of range");
  }
  // A migration is its own trace (it is not any request's work): the
  // "migrate" span covers drain + ship + warm-start + flip.
  obs::Tracer* tracer = obs::ProcessTracer();
  obs::TraceContext mtrace;
  uint64_t mspan = 0;
  uint64_t mstart = 0;
  if (tracer != nullptr) {
    mtrace = tracer->StartTrace();
    if (mtrace.sampled) {
      mspan = tracer->NewSpanId();
      mstart = tracer->NowUs();
    }
  }
  size_t source_shard;
  std::string spec_text;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    auto spec_it = spec_texts_.find(tenant);
    if (spec_it == spec_texts_.end()) {
      return Status::Unsupported(
          "tenant '" + tenant +
          "' has no spec text recorded with this router; open it through "
          "the router (or use the decomposed migration steps)");
    }
    spec_text = spec_it->second;
    auto route_it = overrides_.find(tenant);
    source_shard =
        route_it != overrides_.end() ? route_it->second : RingShardFor(tenant);
    if (source_shard == target_shard) {
      return Status::InvalidArgument("tenant '" + tenant +
                                     "' already lives on shard " +
                                     std::to_string(target_shard));
    }
    if (!migrating_.insert(tenant).second) {
      return Status::Unavailable("tenant '" + tenant +
                                 "' is already migrating");
    }
  }
  // From here on the tenant's submits bounce with kUnavailable; any
  // failure must clear the mark so the source keeps serving.
  auto abort = [&](const Status& failure) {
    AbortMigration(tenant);
    return failure;
  };
  // 1. Drain + serialize on the source (the server's FETCH_SNAPSHOT
  //    waits out batches already admitted; new ones are bounced here).
  auto snapshot = FetchSnapshotFrom(source_shard, tenant);
  if (!snapshot.ok()) return abort(snapshot.status());
  // 2. Warm-start on the target. A re-landed retry is fine: the target
  //    reports the already-open tenant idempotently.
  auto opened = OpenFromSnapshotOn(target_shard, tenant, spec_text,
                                   *snapshot);
  if (!opened.ok()) return abort(opened.status());
  // 3. Flip the route. After this point the migration is complete from
  //    the caller's view — submits land on the target.
  CFDPROP_RETURN_NOT_OK(CompleteMigration(tenant, target_shard));
  // 4. Retire the source copy. Best-effort: the route no longer points
  //    there, so a failed drop leaks a cold replica, not correctness.
  (void)DropCatalogOn(source_shard, tenant);
  migrations_total_->Increment();
  if (tracer != nullptr && mtrace.sampled) {
    char annot[32];
    std::snprintf(annot, sizeof(annot), "from=%zu to=%zu", source_shard,
                  target_shard);
    tracer->Record(mtrace, mspan, mtrace.parent_span_id, "migrate", mstart,
                   tracer->NowUs() - mstart, tenant,
                   static_cast<int32_t>(target_shard), annot);
  }
  MigrationReport report;
  report.from = source_shard;
  report.to = target_shard;
  report.restored = opened->restored;
  report.rejected = opened->rejected;
  report.snapshot_bytes = snapshot->size();
  return report;
}

Status CoverRouter::ShutdownAll() {
  Status first = Status::OK();
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    Status s = WithShard(shard, [](RemoteBackend& backend) {
      return backend.Shutdown();
    });
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

}  // namespace net
}  // namespace cfdprop
