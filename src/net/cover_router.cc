#include "src/net/cover_router.h"

#include <algorithm>

namespace cfdprop {
namespace net {

namespace {

/// FNV-1a, 64-bit, with a murmur-style avalanche finalizer. Raw FNV-1a
/// diffuses the last byte through a single multiply, so names sharing a
/// prefix ("tenant0", "tenant1", ...) land on adjacent ring points and
/// can starve whole shards; the finalizer spreads them uniformly.
uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

CoverRouter::CoverRouter(CoverRouterOptions options) {
  shards_.reserve(options.shards.size());
  for (CoverClientOptions& shard : options.shards) {
    shards_.push_back(std::make_unique<Shard>(std::move(shard)));
  }
  const size_t vnodes = std::max<size_t>(1, options.virtual_nodes);
  ring_.reserve(shards_.size() * vnodes);
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    for (size_t replica = 0; replica < vnodes; ++replica) {
      // The point depends on the shard's *position*, not its address:
      // every router over the same shard list routes identically.
      const std::string key =
          std::to_string(shard) + "#" + std::to_string(replica);
      ring_.emplace_back(Fnv1a(key), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t CoverRouter::RingShardFor(const std::string& tenant) const {
  const uint64_t point = Fnv1a(tenant);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<uint64_t, size_t>& entry, uint64_t value) {
        return entry.first < value;
      });
  if (it == ring_.end()) it = ring_.begin();  // clockwise wrap
  return it->second;
}

size_t CoverRouter::ShardFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  auto it = overrides_.find(tenant);
  if (it != overrides_.end()) return it->second;
  return RingShardFor(tenant);
}

Result<OpenCatalogReplyInfo> CoverRouter::OpenCatalog(
    const std::string& tenant, const std::string& spec_text) {
  const size_t shard = ShardFor(tenant);
  auto info = WithShard(shard, [&](RemoteBackend& backend) {
    return backend.OpenCatalog(tenant, spec_text);
  });
  if (info.ok()) {
    std::lock_guard<std::mutex> lock(route_mu_);
    spec_texts_[tenant] = spec_text;
  }
  return info;
}

Result<std::vector<BatchResult>> CoverRouter::SubmitBatches(
    const std::string& tenant,
    const std::vector<std::vector<std::string>>& batches, ValuePool& pool) {
  size_t shard;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (migrating_.count(tenant) != 0) {
      // Fail fast, typed: the tenant is mid-flight between shards and
      // neither copy is authoritative. The caller retries after the
      // route flip — that retry is the "zero failed submits" contract.
      return Status::Unavailable("tenant '" + tenant +
                                 "' is migrating; retry");
    }
    auto it = overrides_.find(tenant);
    shard = it != overrides_.end() ? it->second : RingShardFor(tenant);
  }
  return WithShard(shard, [&](RemoteBackend& backend) {
    return backend.SubmitBatches(tenant, batches, pool);
  });
}

Result<WireServiceStats> CoverRouter::Stats() {
  WireServiceStats aggregate;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    auto stats = WithShard(shard, [](RemoteBackend& backend) {
      return backend.Stats();
    });
    if (!stats.ok()) return stats.status();
    aggregate.global_cache_budget += stats->global_cache_budget;
    aggregate.batches_submitted += stats->batches_submitted;
    aggregate.batches_completed += stats->batches_completed;
    aggregate.batches_rejected += stats->batches_rejected;
    for (WireTenantStats& t : stats->tenants) {
      aggregate.tenants.push_back(std::move(t));
    }
  }
  // Tenant-name order, as one fat server would report the same set.
  std::sort(aggregate.tenants.begin(), aggregate.tenants.end(),
            [](const WireTenantStats& a, const WireTenantStats& b) {
              return a.name < b.name;
            });
  return aggregate;
}

Result<std::string> CoverRouter::Metrics() {
  std::string joined;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    auto text = WithShard(shard, [](RemoteBackend& backend) {
      return backend.Metrics();
    });
    if (!text.ok()) return text.status();
    joined += "# --- shard " + std::to_string(shard) + " ---\n";
    joined += *text;
  }
  return joined;
}

Status CoverRouter::DropCatalog(const std::string& tenant) {
  size_t shard;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (migrating_.count(tenant) != 0) {
      return Status::Unavailable("tenant '" + tenant +
                                 "' is migrating; retry");
    }
    auto it = overrides_.find(tenant);
    shard = it != overrides_.end() ? it->second : RingShardFor(tenant);
  }
  Status dropped = WithShard(shard, [&](RemoteBackend& backend) {
    return backend.DropCatalog(tenant);
  });
  if (dropped.ok()) {
    std::lock_guard<std::mutex> lock(route_mu_);
    overrides_.erase(tenant);
    spec_texts_.erase(tenant);
  }
  return dropped;
}

Status CoverRouter::BeginMigration(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(route_mu_);
  if (!migrating_.insert(tenant).second) {
    return Status::Unavailable("tenant '" + tenant +
                               "' is already migrating");
  }
  return Status::OK();
}

Status CoverRouter::CompleteMigration(const std::string& tenant,
                                      size_t shard) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  std::lock_guard<std::mutex> lock(route_mu_);
  // The route flip: one map store under the lock — a submit observes
  // either the old shard or the new one, never a torn in-between.
  if (RingShardFor(tenant) == shard) {
    overrides_.erase(tenant);  // back on its natural placement
  } else {
    overrides_[tenant] = shard;
  }
  migrating_.erase(tenant);
  return Status::OK();
}

void CoverRouter::AbortMigration(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(route_mu_);
  migrating_.erase(tenant);
}

Result<std::string> CoverRouter::FetchSnapshotFrom(size_t shard,
                                                   const std::string& tenant) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  return WithShard(shard, [&](RemoteBackend& backend) {
    return backend.FetchSnapshot(tenant);
  });
}

Result<OpenCatalogReplyInfo> CoverRouter::OpenFromSnapshotOn(
    size_t shard, const std::string& tenant, const std::string& spec_text,
    std::string_view snapshot) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  return WithShard(shard, [&](RemoteBackend& backend) {
    return backend.OpenFromSnapshot(tenant, spec_text, snapshot);
  });
}

Status CoverRouter::DropCatalogOn(size_t shard, const std::string& tenant) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  return WithShard(shard, [&](RemoteBackend& backend) {
    return backend.DropCatalog(tenant);
  });
}

Result<MigrationReport> CoverRouter::MigrateTenant(const std::string& tenant,
                                                   size_t target_shard) {
  if (target_shard >= shards_.size()) {
    return Status::InvalidArgument("target shard " +
                                   std::to_string(target_shard) +
                                   " out of range");
  }
  size_t source_shard;
  std::string spec_text;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    auto spec_it = spec_texts_.find(tenant);
    if (spec_it == spec_texts_.end()) {
      return Status::Unsupported(
          "tenant '" + tenant +
          "' has no spec text recorded with this router; open it through "
          "the router (or use the decomposed migration steps)");
    }
    spec_text = spec_it->second;
    auto route_it = overrides_.find(tenant);
    source_shard =
        route_it != overrides_.end() ? route_it->second : RingShardFor(tenant);
    if (source_shard == target_shard) {
      return Status::InvalidArgument("tenant '" + tenant +
                                     "' already lives on shard " +
                                     std::to_string(target_shard));
    }
    if (!migrating_.insert(tenant).second) {
      return Status::Unavailable("tenant '" + tenant +
                                 "' is already migrating");
    }
  }
  // From here on the tenant's submits bounce with kUnavailable; any
  // failure must clear the mark so the source keeps serving.
  auto abort = [&](const Status& failure) {
    AbortMigration(tenant);
    return failure;
  };
  // 1. Drain + serialize on the source (the server's FETCH_SNAPSHOT
  //    waits out batches already admitted; new ones are bounced here).
  auto snapshot = FetchSnapshotFrom(source_shard, tenant);
  if (!snapshot.ok()) return abort(snapshot.status());
  // 2. Warm-start on the target. A re-landed retry is fine: the target
  //    reports the already-open tenant idempotently.
  auto opened = OpenFromSnapshotOn(target_shard, tenant, spec_text,
                                   *snapshot);
  if (!opened.ok()) return abort(opened.status());
  // 3. Flip the route. After this point the migration is complete from
  //    the caller's view — submits land on the target.
  CFDPROP_RETURN_NOT_OK(CompleteMigration(tenant, target_shard));
  // 4. Retire the source copy. Best-effort: the route no longer points
  //    there, so a failed drop leaks a cold replica, not correctness.
  (void)DropCatalogOn(source_shard, tenant);
  MigrationReport report;
  report.from = source_shard;
  report.to = target_shard;
  report.restored = opened->restored;
  report.rejected = opened->rejected;
  report.snapshot_bytes = snapshot->size();
  return report;
}

Status CoverRouter::ShutdownAll() {
  Status first = Status::OK();
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    Status s = WithShard(shard, [](RemoteBackend& backend) {
      return backend.Shutdown();
    });
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

}  // namespace net
}  // namespace cfdprop
