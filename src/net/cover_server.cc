#include "src/net/cover_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/net/socket_io.h"

namespace cfdprop {
namespace net {

namespace {

/// Error replies carry no covers, so their encoder never touches the
/// pool — one shared empty pool keeps the signature honest.
const ValuePool& EmptyPool() {
  static const ValuePool pool;
  return pool;
}

/// How long a FETCH_SNAPSHOT waits for the tenant's in-service batches
/// to settle before giving up with DeadlineExceeded. The router holds
/// new submissions off first, so this only waits out work already in.
constexpr std::chrono::milliseconds kMigrationDrainDeadline{10000};

}  // namespace

CoverServer::CoverServer(CatalogService& service, CoverServerOptions options)
    : service_(service), options_(std::move(options)) {
  obs::MetricsRegistry& metrics = service_.metrics();
  constexpr std::string_view kStageName = "cfdprop_net_stage_latency_us";
  constexpr std::string_view kStageHelp =
      "Per-frame network stage latency in microseconds";
  decode_stage_ =
      metrics.GetHistogram(kStageName, kStageHelp, {{"stage", "decode"}});
  encode_stage_ =
      metrics.GetHistogram(kStageName, kStageHelp, {{"stage", "encode"}});
  write_stage_ =
      metrics.GetHistogram(kStageName, kStageHelp, {{"stage", "write"}});
  metrics_collector_id_ =
      metrics.AddCollector([this]() -> std::vector<obs::MetricFamilySamples> {
        const CoverServerStats s = Stats();
        auto scalar = [](std::string_view name, std::string_view help,
                         uint64_t value) {
          obs::MetricFamilySamples f{std::string(name),
                                     obs::MetricType::kCounter,
                                     std::string(help),
                                     {}};
          f.samples.push_back({{}, static_cast<double>(value), std::nullopt});
          return f;
        };
        return {scalar("cfdprop_net_connections_total",
                       "TCP connections accepted", s.connections_accepted),
                scalar("cfdprop_net_frames_total",
                       "Request frames served", s.frames_served),
                scalar("cfdprop_net_decode_errors_total",
                       "Connections dropped for malformed frames",
                       s.decode_errors),
                scalar("cfdprop_net_deadlines_total",
                       "Connections dropped for an expired socket deadline",
                       s.deadlines_exceeded)};
      });
}

CoverServer::~CoverServer() { Stop(); }

Status CoverServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::InvalidArgument(std::string("socket: ") +
                                   std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::InvalidArgument(
        "bind " + options_.host + ":" + std::to_string(options_.port) + ": " +
        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, /*backlog=*/16) != 0) {
    Status s =
        Status::InvalidArgument(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_.store(ntohs(addr.sin_port), std::memory_order_relaxed);
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void CoverServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // The registry (owned by the service) outlives this server: unhook
  // the net-counter collector before teardown so a later render can
  // never call into a dead server.
  service_.metrics().RemoveCollector(metrics_collector_id_);
  // Unblock the acceptor first (shutdown on a listening socket makes
  // accept() fail on Linux), then every connection's blocking recv.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  // A Stop also releases anyone parked in WaitForShutdown.
  RequestShutdown();
}

void CoverServer::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void CoverServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      const bool transient = errno == EMFILE || errno == ENFILE ||
                             errno == EAGAIN || errno == EWOULDBLOCK;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        if (stopping_ || !transient) return;
        // Descriptor pressure: the fds most likely to be reclaimable
        // are our own finished connections. Reap and retry — exiting
        // here would silently stop the server accepting forever.
        ReapFinishedLocked();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof(options_.send_buffer_bytes));
    }
    // Best effort: a socket that refuses the deadline still serves, it
    // just keeps the historical fully-blocking behavior.
    SetIoDeadline(fd, options_.io_timeout);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ReapFinishedLocked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { ServeConnection(raw); });
    conns_.push_back(std::move(conn));
  }
}

void CoverServer::ServeConnection(Connection* conn) {
  const int fd = conn->fd;
  for (;;) {
    // One pointer load per frame; with no tracer installed this path is
    // byte-identical to the untraced build.
    obs::Tracer* tracer = obs::ProcessTracer();
    double decode_us = 0;
    auto frame = ReadFrame(fd, &decode_us);
    if (!frame.ok()) {
      // InvalidArgument = the codec rejected the bytes (corruption);
      // DeadlineExceeded = the peer stalled past options_.io_timeout;
      // NotFound = the peer just went away. Any way this connection is
      // done — but only the first is a protocol failure, and only the
      // second a hung peer.
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
      } else if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        deadlines_exceeded_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    if (decode_stage_) decode_stage_->Record(decode_us);
    // Stamped only when a tracer is installed: the decode span's end is
    // "now", its start is now - decode_us (ReadFrame timed the parse).
    std::chrono::steady_clock::time_point read_end{};
    if (tracer != nullptr) read_end = std::chrono::steady_clock::now();
    frames_served_.fetch_add(1, std::memory_order_relaxed);
    std::string reply;
    FrameTrace ftrace;
    const bool keep = HandleFrame(frame->first, frame->second, &reply,
                                  &ftrace);
    const bool span_frame = tracer != nullptr && ftrace.ctx.sampled;
    if (span_frame) {
      const uint64_t dur = static_cast<uint64_t>(decode_us);
      tracer->Record(ftrace.ctx, tracer->NewSpanId(),
                     ftrace.ctx.parent_span_id, "decode",
                     obs::Tracer::ToUs(read_end) - dur, dur, ftrace.tenant);
    }
    const auto write_start = std::chrono::steady_clock::now();
    Status written = WriteAll(fd, reply);
    if (write_stage_ || span_frame) {
      const auto write_end = std::chrono::steady_clock::now();
      const double write_us = std::chrono::duration<double, std::micro>(
                                  write_end - write_start)
                                  .count();
      if (write_stage_) write_stage_->Record(write_us);
      if (span_frame) {
        tracer->Record(ftrace.ctx, tracer->NewSpanId(),
                       ftrace.ctx.parent_span_id, "write",
                       obs::Tracer::ToUs(write_start),
                       static_cast<uint64_t>(write_us), ftrace.tenant);
      }
    }
    // A shutdown request is honored only after its confirmation reply
    // reached the socket — firing it earlier would let the owner's
    // Stop() sever this connection mid-write and fail the client's
    // Shutdown() call.
    if (frame->first == FrameType::kShutdown) RequestShutdown();
    if (!written.ok()) {
      // A dead *reader*: the reply outgrew the peer's receive window +
      // our send buffer and the send deadline expired. Close only this
      // connection; the batch itself completed (admission released its
      // slot when the dispatcher delivered the reply future), so the
      // tenant serves the next client untouched.
      if (written.code() == StatusCode::kDeadlineExceeded) {
        deadlines_exceeded_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    if (!keep) break;
  }
  // The fd is closed after the join (by the acceptor's reap or by
  // Stop()) — never here, so a racing Stop can't shut down a recycled
  // descriptor. `done` is this thread's last store.
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

bool CoverServer::HandleFrame(FrameType type, std::string_view payload,
                              std::string* reply, FrameTrace* trace) {
  // Every reply payload begins with a Status, so an over-bound payload
  // (a burst whose covers exceed the 16 MiB frame limit) degrades to a
  // typed status-only reply instead of a frame the peer must reject as
  // corrupt.
  //
  // `trace` is filled by HandleSubmitBatch while the frame() argument
  // evaluates, so by the time the lambda body runs the encode span can
  // be recorded against the request's in-band trace.
  auto frame = [this, trace](FrameType reply_type, std::string reply_payload) {
    if (reply_payload.size() > kMaxFramePayload) {
      reply_payload = EncodeStatusReply(Status::ResourceExhausted(
          "reply payload of " + std::to_string(reply_payload.size()) +
          " bytes exceeds the " + std::to_string(kMaxFramePayload) +
          "-byte frame bound; split the request"));
    }
    // The encode stage is the reply *frame* assembly (header + copy +
    // whole-frame checksum); the payload encoding inside the handlers
    // is accounted to the handler's own stages.
    obs::Tracer* tracer =
        trace->ctx.sampled ? obs::ProcessTracer() : nullptr;
    const auto encode_start = std::chrono::steady_clock::now();
    std::string encoded = EncodeFrame(reply_type, reply_payload);
    if (encode_stage_ || tracer != nullptr) {
      const auto encode_end = std::chrono::steady_clock::now();
      const double encode_us = std::chrono::duration<double, std::micro>(
                                   encode_end - encode_start)
                                   .count();
      if (encode_stage_) encode_stage_->Record(encode_us);
      if (tracer != nullptr) {
        tracer->Record(trace->ctx, tracer->NewSpanId(),
                       trace->ctx.parent_span_id, "encode",
                       obs::Tracer::ToUs(encode_start),
                       static_cast<uint64_t>(encode_us), trace->tenant);
      }
    }
    return encoded;
  };
  switch (type) {
    case FrameType::kOpenCatalog:
      *reply = frame(FrameType::kOpenCatalogReply,
                     HandleOpenCatalog(payload));
      return true;
    case FrameType::kSubmitBatch:
      *reply = frame(FrameType::kSubmitBatchReply,
                     HandleSubmitBatch(payload, trace));
      return true;
    case FrameType::kStats:
      *reply = frame(FrameType::kStatsReply, HandleStats());
      return true;
    case FrameType::kMetrics:
      *reply = frame(FrameType::kMetricsReply, HandleMetrics());
      return true;
    case FrameType::kTraceDump:
      *reply = frame(FrameType::kTraceDumpReply, HandleTraceDump(payload));
      return true;
    case FrameType::kDropCatalog:
      *reply = frame(FrameType::kDropCatalogReply,
                     HandleDropCatalog(payload));
      return true;
    case FrameType::kFetchSnapshot:
      *reply = frame(FrameType::kFetchSnapshotReply,
                     HandleFetchSnapshot(payload));
      return true;
    case FrameType::kOpenFromSnapshot:
      *reply = frame(FrameType::kOpenFromSnapshotReply,
                     HandleOpenFromSnapshot(payload));
      return true;
    case FrameType::kShutdown:
      // The caller (ServeConnection) requests the actual shutdown after
      // this confirmation reply is on the wire.
      *reply = EncodeFrame(FrameType::kShutdownReply,
                           EncodeStatusReply(Status::OK()));
      return false;
    default:
      // A reply type sent *to* the server: not a conversation this
      // protocol has. Treat like corruption — close.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      *reply = EncodeFrame(
          FrameType::kShutdownReply,
          EncodeStatusReply(Status::InvalidArgument(
              "reply frame type sent to server")));
      return false;
  }
}

std::string CoverServer::HandleOpenCatalog(std::string_view payload) {
  auto request = DecodeOpenCatalogRequest(payload);
  if (!request.ok()) {
    return EncodeOpenCatalogReply(request.status(), {});
  }
  auto info = OpenSpec(request->tenant, request->spec_text);
  if (!info.ok()) return EncodeOpenCatalogReply(info.status(), {});
  return EncodeOpenCatalogReply(Status::OK(), *info);
}

Result<OpenCatalogReplyInfo> CoverServer::OpenSpec(
    const std::string& tenant, const std::string& spec_text) {
  return OpenSpecInternal(tenant, spec_text, nullptr);
}

Result<OpenCatalogReplyInfo> CoverServer::OpenSpecFromSnapshot(
    const std::string& tenant, const std::string& spec_text,
    std::string_view snapshot) {
  return OpenSpecInternal(tenant, spec_text, &snapshot);
}

Result<OpenCatalogReplyInfo> CoverServer::OpenSpecInternal(
    const std::string& tenant, const std::string& spec_text,
    const std::string_view* warm) {
  {
    // Idempotent reopen: an open tenant whose recorded text matches is
    // reported as-is (a reconnecting client replays its opens; a
    // migration retry re-lands on a target that already accepted it).
    // Matching is byte-exact — a *different* spec on a live tenant is
    // a real conflict and keeps the registry's duplicate error.
    std::lock_guard<std::mutex> lock(specs_mu_);
    auto it = spec_texts_.find(tenant);
    if (it != spec_texts_.end()) {
      if (it->second != spec_text) {
        return Status::InvalidArgument(
            "tenant '" + tenant +
            "' is already open with a different spec");
      }
      auto handle = service_.ResolveCatalog(tenant);
      if (handle.ok()) {
        OpenCatalogReplyInfo info;
        const CacheStats cache = (*handle)->engine().Stats().cache;
        info.restored = cache.restored;
        info.rejected = cache.rejected;
        info.cache_budget = (*handle)->cache_budget();
        return info;
      }
      // Text recorded but the tenant is gone (dropped directly on the
      // service): stale record, fall through to a fresh open.
    }
  }
  CFDPROP_ASSIGN_OR_RETURN(Spec spec, ParseSpec(spec_text));
  CFDPROP_ASSIGN_OR_RETURN(OpenCatalogReplyInfo info,
                           OpenParsedSpecInternal(tenant, std::move(spec),
                                                  warm));
  {
    std::lock_guard<std::mutex> lock(specs_mu_);
    spec_texts_[tenant] = spec_text;
  }
  return info;
}

Result<OpenCatalogReplyInfo> CoverServer::OpenParsedSpec(
    const std::string& tenant, Spec spec) {
  return OpenParsedSpecInternal(tenant, std::move(spec), nullptr);
}

Result<OpenCatalogReplyInfo> CoverServer::OpenParsedSpecFromSnapshot(
    const std::string& tenant, Spec spec, std::string_view snapshot) {
  return OpenParsedSpecInternal(tenant, std::move(spec), &snapshot);
}

Result<OpenCatalogReplyInfo> CoverServer::OpenParsedSpecInternal(
    const std::string& tenant, Spec spec, const std::string_view* warm) {
  // Σ 0 is the spec's source CFDs — the id every submit-batch request
  // serves against. Copy them out before the catalog moves: Value ids
  // are indices into the pool, stable across the move.
  std::vector<std::vector<CFD>> sigmas = {spec.source_cfds};
  Catalog catalog = std::move(spec.catalog);
  Result<TenantHandle> opened =
      warm != nullptr
          ? service_.OpenCatalogFromSnapshot(tenant, std::move(catalog),
                                             std::move(sigmas), *warm)
          : service_.OpenCatalog(tenant, std::move(catalog),
                                 std::move(sigmas));
  if (!opened.ok()) return opened.status();
  TenantHandle handle = std::move(opened).value();
  {
    std::lock_guard<std::mutex> lock(specs_mu_);
    specs_[tenant] = std::make_shared<const Spec>(std::move(spec));
  }
  OpenCatalogReplyInfo info;
  const CacheStats cache = handle->engine().Stats().cache;
  info.restored = cache.restored;
  info.rejected = cache.rejected;
  info.cache_budget = handle->cache_budget();
  return info;
}

std::string CoverServer::HandleSubmitBatch(std::string_view payload,
                                           FrameTrace* trace) {
  auto request = DecodeSubmitBatchRequest(payload);
  if (!request.ok()) {
    return EncodeSubmitBatchReply(request.status(), {}, EmptyPool());
  }
  trace->ctx = request->trace;
  trace->tenant = request->tenant;
  // A submit arriving with no in-band trace makes this server the edge:
  // `listen --trace-dump` / `--slow-threshold-us` then observe plain
  // clients too, not only tracing-aware ones. The edge ctx keeps
  // parent 0 (the "request" span is the root); the context handed
  // downstream parents everything under that span.
  obs::Tracer* edge_tracer = nullptr;
  uint64_t edge_span = 0, edge_start = 0;
  obs::TraceContext edge_ctx;
  if (request->trace.trace_id == 0) {
    if (obs::Tracer* tracer = obs::ProcessTracer()) {
      edge_ctx = tracer->StartTrace();
      if (edge_ctx.sampled || tracer->slow_enabled()) {
        edge_tracer = tracer;
        edge_span = tracer->NewSpanId();
        edge_start = tracer->NowUs();
      }
      trace->ctx = edge_ctx;
      trace->ctx.parent_span_id = edge_span;
    }
  }
  auto handle = service_.ResolveCatalog(request->tenant);
  if (!handle.ok()) {
    return EncodeSubmitBatchReply(handle.status(), {}, EmptyPool());
  }
  std::shared_ptr<const Spec> spec;
  {
    std::lock_guard<std::mutex> lock(specs_mu_);
    auto it = specs_.find(request->tenant);
    if (it != specs_.end()) spec = it->second;
  }
  if (!spec) {
    return EncodeSubmitBatchReply(
        Status::NotFound("tenant '" + request->tenant +
                         "' has no spec registered with this server"),
        {}, EmptyPool());
  }

  // Resolve view names per batch; a batch naming an unknown view fails
  // alone (typed NotFound) and is never submitted — its siblings still
  // run, so one bad name can't waste a whole pipeline.
  std::vector<WireBatchResult> outcomes(request->batches.size());
  std::vector<std::vector<Engine::Request>> to_submit;
  std::vector<size_t> submit_slot;
  for (size_t i = 0; i < request->batches.size(); ++i) {
    std::vector<Engine::Request> requests;
    requests.reserve(request->batches[i].size());
    Status resolved = Status::OK();
    for (const std::string& view : request->batches[i]) {
      auto it = spec->views.find(view);
      if (it == spec->views.end()) {
        resolved = Status::NotFound("unknown view '" + view +
                                    "' in tenant '" + request->tenant + "'");
        break;
      }
      requests.emplace_back(it->second, /*sigma_id=*/0);
    }
    if (!resolved.ok()) {
      outcomes[i].status = std::move(resolved);
      continue;
    }
    submit_slot.push_back(i);
    to_submit.push_back(std::move(requests));
  }

  // One SubmitBatches call for the whole frame: admission for every
  // batch is decided under one lock, which is what makes a pipelined
  // burst's admit/reject pattern deterministic. The in-band trace rides
  // along so the service's stage spans join the request's tree.
  auto submitted = service_.SubmitBatches(request->tenant,
                                          std::move(to_submit),
                                          trace->ctx);
  for (size_t k = 0; k < submitted.size(); ++k) {
    WireBatchResult& out = outcomes[submit_slot[k]];
    if (!submitted[k].ok()) {
      out.status = submitted[k].status();
      continue;
    }
    out.results = submitted[k].value().get().results;
  }
  if (edge_tracer != nullptr) {
    edge_tracer->RecordEdge(edge_ctx, edge_span, "request", edge_start,
                            edge_tracer->NowUs() - edge_start,
                            request->tenant);
  }
  return EncodeSubmitBatchReply(Status::OK(), outcomes,
                                handle.value()->engine().catalog().pool());
}

std::string CoverServer::HandleStats() {
  const ServiceStatsSnapshot s = service_.Stats();
  WireServiceStats w;
  w.global_cache_budget = s.global_cache_budget;
  w.batches_submitted = s.batches_submitted;
  w.batches_completed = s.batches_completed;
  w.batches_rejected = s.batches_rejected;
  w.tenants.reserve(s.tenants.size());
  for (const TenantStatsSnapshot& t : s.tenants) {
    WireTenantStats wt;
    wt.name = t.name;
    wt.cache_budget = t.cache_budget;
    wt.batches_submitted = t.batches_submitted;
    wt.admitted = t.admitted;
    wt.admission_rejected = t.admission_rejected;
    wt.queued = t.queued;
    wt.running = t.running;
    wt.engine_text = t.engine.ToString();
    w.tenants.push_back(std::move(wt));
  }
  return EncodeStatsReply(Status::OK(), w);
}

std::string CoverServer::HandleMetrics() {
  // The render walks the service's registry, which includes this
  // server's net-counter collector — so one scrape covers every layer.
  return EncodeMetricsReply(Status::OK(), service_.RenderMetricsText());
}

std::string CoverServer::HandleTraceDump(std::string_view payload) {
  Status decoded = DecodeTraceDumpRequest(payload);
  if (!decoded.ok()) return EncodeTraceDumpReply(decoded, {});
  // No tracer installed = nothing recorded: an empty OK dump, so a
  // plain server and a traced one speak the same frame.
  std::vector<obs::SpanRecord> spans;
  if (obs::Tracer* tracer = obs::ProcessTracer()) {
    spans = tracer->Snapshot();
  }
  return EncodeTraceDumpReply(Status::OK(), spans);
}

std::string CoverServer::HandleDropCatalog(std::string_view payload) {
  auto tenant = DecodeStringRequest(payload);
  if (!tenant.ok()) return EncodeStatusReply(tenant.status());
  Status dropped = service_.DropCatalog(*tenant);
  if (dropped.ok()) {
    std::lock_guard<std::mutex> lock(specs_mu_);
    specs_.erase(*tenant);
    spec_texts_.erase(*tenant);
  }
  return EncodeStatusReply(dropped);
}

std::string CoverServer::HandleFetchSnapshot(std::string_view payload) {
  auto tenant = DecodeStringRequest(payload);
  if (!tenant.ok()) return EncodeFetchSnapshotReply(tenant.status(), {});
  // Quiesce first so the serialized bytes are the settled cache — every
  // admitted batch has delivered its reply (and taken its cache
  // insertions) before the serialization walks the shards.
  Status drained = service_.DrainTenant(*tenant, kMigrationDrainDeadline);
  if (!drained.ok()) return EncodeFetchSnapshotReply(drained, {});
  auto snapshot = service_.ExportTenantSnapshot(*tenant);
  if (!snapshot.ok()) {
    return EncodeFetchSnapshotReply(snapshot.status(), {});
  }
  return EncodeFetchSnapshotReply(Status::OK(), snapshot->bytes);
}

std::string CoverServer::HandleOpenFromSnapshot(std::string_view payload) {
  auto request = DecodeOpenFromSnapshotRequest(payload);
  if (!request.ok()) return EncodeOpenCatalogReply(request.status(), {});
  auto info = OpenSpecFromSnapshot(request->tenant, request->spec_text,
                                   request->snapshot);
  if (!info.ok()) return EncodeOpenCatalogReply(info.status(), {});
  return EncodeOpenCatalogReply(Status::OK(), *info);
}

void CoverServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_.store(true, std::memory_order_relaxed);
  }
  shutdown_cv_.notify_all();
}

void CoverServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [&] {
    return shutdown_requested_.load(std::memory_order_relaxed);
  });
}

CoverServerStats CoverServer::Stats() const {
  CoverServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.frames_served = frames_served_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.deadlines_exceeded = deadlines_exceeded_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace net
}  // namespace cfdprop
