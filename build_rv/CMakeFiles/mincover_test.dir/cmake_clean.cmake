file(REMOVE_RECURSE
  "CMakeFiles/mincover_test.dir/tests/mincover_test.cc.o"
  "CMakeFiles/mincover_test.dir/tests/mincover_test.cc.o.d"
  "mincover_test"
  "mincover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mincover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
