# Empty dependencies file for mincover_test.
# This may be replaced when dependencies are built.
