file(REMOVE_RECURSE
  "CMakeFiles/data_integration.dir/examples/data_integration.cpp.o"
  "CMakeFiles/data_integration.dir/examples/data_integration.cpp.o.d"
  "data_integration"
  "data_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
