# Empty dependencies file for data_integration.
# This may be replaced when dependencies are built.
