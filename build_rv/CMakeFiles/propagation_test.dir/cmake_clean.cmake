file(REMOVE_RECURSE
  "CMakeFiles/propagation_test.dir/tests/propagation_test.cc.o"
  "CMakeFiles/propagation_test.dir/tests/propagation_test.cc.o.d"
  "propagation_test"
  "propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
