# Empty dependencies file for propagation_test.
# This may be replaced when dependencies are built.
