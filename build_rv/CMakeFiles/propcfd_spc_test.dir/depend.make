# Empty dependencies file for propcfd_spc_test.
# This may be replaced when dependencies are built.
