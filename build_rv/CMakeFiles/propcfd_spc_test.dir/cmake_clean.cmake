file(REMOVE_RECURSE
  "CMakeFiles/propcfd_spc_test.dir/tests/propcfd_spc_test.cc.o"
  "CMakeFiles/propcfd_spc_test.dir/tests/propcfd_spc_test.cc.o.d"
  "propcfd_spc_test"
  "propcfd_spc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propcfd_spc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
