# Empty dependencies file for implication_test.
# This may be replaced when dependencies are built.
