file(REMOVE_RECURSE
  "CMakeFiles/implication_test.dir/tests/implication_test.cc.o"
  "CMakeFiles/implication_test.dir/tests/implication_test.cc.o.d"
  "implication_test"
  "implication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
