# Empty dependencies file for emptiness_test.
# This may be replaced when dependencies are built.
