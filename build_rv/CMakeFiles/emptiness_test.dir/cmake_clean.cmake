file(REMOVE_RECURSE
  "CMakeFiles/emptiness_test.dir/tests/emptiness_test.cc.o"
  "CMakeFiles/emptiness_test.dir/tests/emptiness_test.cc.o.d"
  "emptiness_test"
  "emptiness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emptiness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
