# Empty dependencies file for schema_mapping.
# This may be replaced when dependencies are built.
