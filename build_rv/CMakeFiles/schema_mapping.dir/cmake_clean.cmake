file(REMOVE_RECURSE
  "CMakeFiles/schema_mapping.dir/examples/schema_mapping.cpp.o"
  "CMakeFiles/schema_mapping.dir/examples/schema_mapping.cpp.o.d"
  "schema_mapping"
  "schema_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
