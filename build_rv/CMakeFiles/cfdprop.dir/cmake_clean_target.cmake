file(REMOVE_RECURSE
  "libcfdprop.a"
)
