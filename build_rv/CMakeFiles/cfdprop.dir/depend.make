# Empty dependencies file for cfdprop.
# This may be replaced when dependencies are built.
