
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/view.cc" "CMakeFiles/cfdprop.dir/src/algebra/view.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/algebra/view.cc.o.d"
  "/root/repo/src/base/rng.cc" "CMakeFiles/cfdprop.dir/src/base/rng.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/base/rng.cc.o.d"
  "/root/repo/src/base/status.cc" "CMakeFiles/cfdprop.dir/src/base/status.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/base/status.cc.o.d"
  "/root/repo/src/base/value.cc" "CMakeFiles/cfdprop.dir/src/base/value.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/base/value.cc.o.d"
  "/root/repo/src/cfd/cfd.cc" "CMakeFiles/cfdprop.dir/src/cfd/cfd.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/cfd/cfd.cc.o.d"
  "/root/repo/src/cfd/implication.cc" "CMakeFiles/cfdprop.dir/src/cfd/implication.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/cfd/implication.cc.o.d"
  "/root/repo/src/cfd/mincover.cc" "CMakeFiles/cfdprop.dir/src/cfd/mincover.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/cfd/mincover.cc.o.d"
  "/root/repo/src/cfd/pattern.cc" "CMakeFiles/cfdprop.dir/src/cfd/pattern.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/cfd/pattern.cc.o.d"
  "/root/repo/src/chase/chase.cc" "CMakeFiles/cfdprop.dir/src/chase/chase.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/chase/chase.cc.o.d"
  "/root/repo/src/chase/symbolic_instance.cc" "CMakeFiles/cfdprop.dir/src/chase/symbolic_instance.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/chase/symbolic_instance.cc.o.d"
  "/root/repo/src/cover/closure_baseline.cc" "CMakeFiles/cfdprop.dir/src/cover/closure_baseline.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/cover/closure_baseline.cc.o.d"
  "/root/repo/src/cover/compute_eq.cc" "CMakeFiles/cfdprop.dir/src/cover/compute_eq.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/cover/compute_eq.cc.o.d"
  "/root/repo/src/cover/propcfd_spc.cc" "CMakeFiles/cfdprop.dir/src/cover/propcfd_spc.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/cover/propcfd_spc.cc.o.d"
  "/root/repo/src/cover/rbr.cc" "CMakeFiles/cfdprop.dir/src/cover/rbr.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/cover/rbr.cc.o.d"
  "/root/repo/src/data/database.cc" "CMakeFiles/cfdprop.dir/src/data/database.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/data/database.cc.o.d"
  "/root/repo/src/data/eval.cc" "CMakeFiles/cfdprop.dir/src/data/eval.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/data/eval.cc.o.d"
  "/root/repo/src/data/relation.cc" "CMakeFiles/cfdprop.dir/src/data/relation.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/data/relation.cc.o.d"
  "/root/repo/src/data/validate.cc" "CMakeFiles/cfdprop.dir/src/data/validate.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/data/validate.cc.o.d"
  "/root/repo/src/engine/cover_cache.cc" "CMakeFiles/cfdprop.dir/src/engine/cover_cache.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/engine/cover_cache.cc.o.d"
  "/root/repo/src/engine/engine.cc" "CMakeFiles/cfdprop.dir/src/engine/engine.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/engine/engine.cc.o.d"
  "/root/repo/src/engine/fingerprint.cc" "CMakeFiles/cfdprop.dir/src/engine/fingerprint.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/engine/fingerprint.cc.o.d"
  "/root/repo/src/gen/generators.cc" "CMakeFiles/cfdprop.dir/src/gen/generators.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/gen/generators.cc.o.d"
  "/root/repo/src/parser/parser.cc" "CMakeFiles/cfdprop.dir/src/parser/parser.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/parser/parser.cc.o.d"
  "/root/repo/src/propagation/emptiness.cc" "CMakeFiles/cfdprop.dir/src/propagation/emptiness.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/propagation/emptiness.cc.o.d"
  "/root/repo/src/propagation/propagation.cc" "CMakeFiles/cfdprop.dir/src/propagation/propagation.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/propagation/propagation.cc.o.d"
  "/root/repo/src/propagation/reductions.cc" "CMakeFiles/cfdprop.dir/src/propagation/reductions.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/propagation/reductions.cc.o.d"
  "/root/repo/src/schema/domain.cc" "CMakeFiles/cfdprop.dir/src/schema/domain.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/schema/domain.cc.o.d"
  "/root/repo/src/schema/schema.cc" "CMakeFiles/cfdprop.dir/src/schema/schema.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/schema/schema.cc.o.d"
  "/root/repo/src/tableau/tableau.cc" "CMakeFiles/cfdprop.dir/src/tableau/tableau.cc.o" "gcc" "CMakeFiles/cfdprop.dir/src/tableau/tableau.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
