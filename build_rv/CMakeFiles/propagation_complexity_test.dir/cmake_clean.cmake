file(REMOVE_RECURSE
  "CMakeFiles/propagation_complexity_test.dir/tests/propagation_complexity_test.cc.o"
  "CMakeFiles/propagation_complexity_test.dir/tests/propagation_complexity_test.cc.o.d"
  "propagation_complexity_test"
  "propagation_complexity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_complexity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
