# Empty dependencies file for propagation_complexity_test.
# This may be replaced when dependencies are built.
