# Empty dependencies file for closure_baseline_test.
# This may be replaced when dependencies are built.
