file(REMOVE_RECURSE
  "CMakeFiles/closure_baseline_test.dir/tests/closure_baseline_test.cc.o"
  "CMakeFiles/closure_baseline_test.dir/tests/closure_baseline_test.cc.o.d"
  "closure_baseline_test"
  "closure_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
