file(REMOVE_RECURSE
  "CMakeFiles/fingerprint_test.dir/tests/fingerprint_test.cc.o"
  "CMakeFiles/fingerprint_test.dir/tests/fingerprint_test.cc.o.d"
  "fingerprint_test"
  "fingerprint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fingerprint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
