# Empty dependencies file for fingerprint_test.
# This may be replaced when dependencies are built.
