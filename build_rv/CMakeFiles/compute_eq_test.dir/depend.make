# Empty dependencies file for compute_eq_test.
# This may be replaced when dependencies are built.
