file(REMOVE_RECURSE
  "CMakeFiles/compute_eq_test.dir/tests/compute_eq_test.cc.o"
  "CMakeFiles/compute_eq_test.dir/tests/compute_eq_test.cc.o.d"
  "compute_eq_test"
  "compute_eq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_eq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
