# Empty dependencies file for cfdprop_cli.
# This may be replaced when dependencies are built.
