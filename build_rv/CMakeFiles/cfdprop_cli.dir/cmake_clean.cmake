file(REMOVE_RECURSE
  "CMakeFiles/cfdprop_cli.dir/tools/cfdprop_cli.cpp.o"
  "CMakeFiles/cfdprop_cli.dir/tools/cfdprop_cli.cpp.o.d"
  "cfdprop_cli"
  "cfdprop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfdprop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
