# Empty dependencies file for tableau_test.
# This may be replaced when dependencies are built.
