file(REMOVE_RECURSE
  "CMakeFiles/tableau_test.dir/tests/tableau_test.cc.o"
  "CMakeFiles/tableau_test.dir/tests/tableau_test.cc.o.d"
  "tableau_test"
  "tableau_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
