# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rbr_test.
