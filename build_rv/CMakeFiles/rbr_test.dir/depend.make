# Empty dependencies file for rbr_test.
# This may be replaced when dependencies are built.
