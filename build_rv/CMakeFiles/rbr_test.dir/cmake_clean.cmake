file(REMOVE_RECURSE
  "CMakeFiles/rbr_test.dir/tests/rbr_test.cc.o"
  "CMakeFiles/rbr_test.dir/tests/rbr_test.cc.o.d"
  "rbr_test"
  "rbr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
