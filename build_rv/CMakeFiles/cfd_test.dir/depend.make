# Empty dependencies file for cfd_test.
# This may be replaced when dependencies are built.
