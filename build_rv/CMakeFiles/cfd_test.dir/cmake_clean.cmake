file(REMOVE_RECURSE
  "CMakeFiles/cfd_test.dir/tests/cfd_test.cc.o"
  "CMakeFiles/cfd_test.dir/tests/cfd_test.cc.o.d"
  "cfd_test"
  "cfd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
