file(REMOVE_RECURSE
  "CMakeFiles/symbolic_instance_test.dir/tests/symbolic_instance_test.cc.o"
  "CMakeFiles/symbolic_instance_test.dir/tests/symbolic_instance_test.cc.o.d"
  "symbolic_instance_test"
  "symbolic_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
