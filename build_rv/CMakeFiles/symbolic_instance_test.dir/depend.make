# Empty dependencies file for symbolic_instance_test.
# This may be replaced when dependencies are built.
