// Data cleaning (application (3) of Section 1): CFDs were proposed for
// detecting inconsistencies. Given target-side CFDs, propagation
// analysis splits them into those guaranteed by the sources (no need to
// validate against the view) and those that must be checked on the data.
// For the latter, FindViolations pinpoints the offending tuples.

#include <cstdio>
#include <string>
#include <vector>

#include "src/data/eval.h"
#include "src/data/validate.h"
#include "src/propagation/propagation.h"
#include "src/schema/schema.h"

using namespace cfdprop;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Get(Result<T> r) {
  Check(r.ok() ? Status::OK() : r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  Catalog catalog;
  Get(catalog.AddRelation("Stores", {"store_id", "city", "zip", "manager"}));
  Get(catalog.AddRelation("Sales", {"store", "sku", "price", "qty"}));

  auto wc = PatternValue::Wildcard();

  // Source-side constraints the upstream systems enforce.
  std::vector<CFD> sigma = {
      Get(CFD::FD(0, {0}, 1)),  // store_id -> city
      Get(CFD::FD(0, {0}, 2)),  // store_id -> zip
      Get(CFD::FD(0, {0}, 3)),  // store_id -> manager
  };

  // Reporting view: sales joined with store locations.
  SPCViewBuilder b(catalog);
  size_t stores = b.AddAtom(RelationId{0});
  size_t sales = Get(b.AddAtom("Sales"));
  Check(b.SelectEq(sales, "store", stores, "store_id"));
  Check(b.Project(sales, "store", "store"));   // 0
  Check(b.Project(stores, "city", "city"));    // 1
  Check(b.Project(stores, "zip", "zip"));      // 2
  Check(b.Project(sales, "sku", "sku"));       // 3
  Check(b.Project(sales, "price", "price"));   // 4
  SPCView view = Get(b.Build());

  // Target-side cleaning rules an analyst declared on the view.
  struct Rule {
    const char* label;
    CFD cfd;
  };
  std::vector<Rule> rules = {
      {"store -> city", Get(CFD::Make(kViewSchemaId, {0}, {wc}, 1, wc))},
      {"store -> zip", Get(CFD::Make(kViewSchemaId, {0}, {wc}, 2, wc))},
      {"zip -> city", Get(CFD::Make(kViewSchemaId, {2}, {wc}, 1, wc))},
      {"store, sku -> price",
       Get(CFD::Make(kViewSchemaId, {0, 3}, {wc, wc}, 4, wc))},
  };

  std::printf("Classifying cleaning rules via propagation analysis:\n");
  std::vector<const Rule*> must_check;
  for (const Rule& r : rules) {
    bool propagated = Get(IsPropagated(catalog, view, sigma, r.cfd));
    std::printf("  %-22s : %s\n", r.label,
                propagated ? "guaranteed by sources (skip validation)"
                           : "must be validated on the view");
    if (!propagated) must_check.push_back(&r);
  }

  // Materialize the view on dirty data and validate only the rules that
  // propagation could not discharge.
  Database db(catalog);
  Check(db.InsertText("Stores", {"s1", "Edinburgh", "EH1", "May"}));
  Check(db.InsertText("Stores", {"s2", "Glasgow", "G1", "Rob"}));
  Check(db.InsertText("Stores", {"s3", "Leith", "EH1", "Ann"}));  // EH1 reused!
  Check(db.InsertText("Sales", {"s1", "tea", "3", "10"}));
  Check(db.InsertText("Sales", {"s1", "tea", "4", "2"}));  // price clash
  Check(db.InsertText("Sales", {"s2", "mug", "6", "1"}));
  Check(db.InsertText("Sales", {"s3", "tea", "3", "5"}));

  std::vector<Tuple> rows = Get(Evaluate(db, view));
  std::printf("\nView has %zu rows; validating the %zu residual rules:\n",
              rows.size(), must_check.size());
  for (const Rule* r : must_check) {
    std::vector<Violation> violations =
        Get(FindViolations(rows, r->cfd, view.OutputArity()));
    std::printf("  %-22s : %zu violation(s)\n", r->label, violations.size());
    for (const Violation& v : violations) {
      auto render = [&](size_t i) {
        std::string s;
        for (Value val : rows[i]) {
          s += catalog.pool().Text(val);
          s += " ";
        }
        return s;
      };
      std::printf("      rows %zu/%zu: %s | %s\n", v.first, v.second,
                  render(v.first).c_str(), render(v.second).c_str());
    }
  }
  std::printf("\nThe propagated rules (store -> city/zip) needed no "
              "validation at all:\nthe source key on Stores guarantees "
              "them on every possible view state.\n");
  return 0;
}
