// Data integration (application (2) of Section 1): use a propagation
// cover to validate view updates against the global view of an
// integration system WITHOUT consulting the sources.
//
// A mediator exposes V = pi(...sigma(Orders x Customers)...); the source
// owners declared CFDs on their tables. We compute a minimal propagation
// cover once, then screen incoming view insertions against it: an
// insertion that violates a propagated CFD can be rejected immediately
// because NO source state could produce it.

#include <cstdio>
#include <string>
#include <vector>

#include "src/cover/propcfd_spc.h"
#include "src/data/validate.h"
#include "src/schema/schema.h"

using namespace cfdprop;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Get(Result<T> r) {
  Check(r.ok() ? Status::OK() : r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  Catalog catalog;
  // Source 1: customer master data.
  Get(catalog.AddRelation(
      "Customers", {"cust_id", "name", "country", "vat_class"}));
  // Source 2: order feed.
  Get(catalog.AddRelation(
      "Orders", {"order_id", "cust", "amount", "currency"}));

  auto konst = [&](const char* s) {
    return PatternValue::Constant(catalog.pool().Intern(s));
  };

  // Source CFDs declared by the owners:
  //   Customers: cust_id -> name, country, vat_class   (key)
  //   Customers: [country=UK] -> vat_class = "uk-std"
  //   Orders:    order_id -> cust, amount, currency    (key)
  //   Orders:    [currency=GBP] -> (nothing; GBP orders are unconstrained)
  std::vector<CFD> sigma = {
      Get(CFD::FD(0, {0}, 1)),
      Get(CFD::FD(0, {0}, 2)),
      Get(CFD::FD(0, {0}, 3)),
      Get(CFD::Make(0, {2}, {konst("UK")}, 3, konst("uk-std"))),
      Get(CFD::FD(1, {0}, 1)),
      Get(CFD::FD(1, {0}, 2)),
      Get(CFD::FD(1, {0}, 3)),
  };

  // The mediated view: UK order lines joined with their customers.
  //   V = pi_{order_id, cust_id, name, amount, vat_class}
  //         sigma_{Orders.cust = Customers.cust_id AND country = 'UK'}
  //           (Customers x Orders)
  SPCViewBuilder b(catalog);
  size_t cust = b.AddAtom(RelationId{0});
  size_t ord = Get(b.AddAtom("Orders"));
  Check(b.SelectEq(ord, "cust", cust, "cust_id"));
  Check(b.SelectConst(cust, "country", "UK"));
  Check(b.Project(ord, "order_id", "order_id"));    // 0
  Check(b.Project(cust, "cust_id", "cust_id"));     // 1
  Check(b.Project(cust, "name", "name"));           // 2
  Check(b.Project(ord, "amount", "amount"));        // 3
  Check(b.Project(cust, "vat_class", "vat_class")); // 4
  SPCView view = Get(b.Build());
  std::printf("Mediated view:\n  %s\n\n", view.ToString(catalog).c_str());

  // One-time analysis: the minimal propagation cover.
  PropCoverResult cover = Get(PropagationCoverSPC(catalog, view, sigma));
  std::printf("Minimal propagation cover (%zu CFDs):\n",
              cover.cover.size());
  for (const CFD& c : cover.cover) {
    std::printf("  %s\n", c.ToString(catalog).c_str());
  }

  // Screen candidate view insertions against the cover.
  auto tuple = [&](const char* id, const char* cid, const char* name,
                   const char* amount, const char* vat) {
    return Tuple{catalog.pool().Intern(id), catalog.pool().Intern(cid),
                 catalog.pool().Intern(name), catalog.pool().Intern(amount),
                 catalog.pool().Intern(vat)};
  };
  std::vector<Tuple> current = {
      tuple("o1", "c7", "Acme Ltd", "120", "uk-std"),
      tuple("o2", "c9", "Widget plc", "75", "uk-std"),
  };
  struct Candidate {
    const char* label;
    Tuple t;
  };
  std::vector<Candidate> candidates = {
      {"new order for a new customer",
       tuple("o3", "c11", "Foo Ltd", "10", "uk-std")},
      {"same order id, different amount (violates order key)",
       tuple("o1", "c7", "Acme Ltd", "999", "uk-std")},
      {"same customer, different name (violates customer key)",
       tuple("o4", "c7", "ACME LIMITED", "50", "uk-std")},
      {"non-standard VAT class for a UK row (violates the conditional)",
       tuple("o5", "c12", "Bar Ltd", "20", "reduced")},
  };

  std::printf("\nScreening view insertions:\n");
  for (const Candidate& cand : candidates) {
    std::vector<Tuple> next = current;
    next.push_back(cand.t);
    bool ok = true;
    const CFD* offender = nullptr;
    for (const CFD& c : cover.cover) {
      if (!Get(Satisfies(next, c, view.OutputArity()))) {
        ok = false;
        offender = &c;
        break;
      }
    }
    if (ok) {
      std::printf("  ACCEPT  %s\n", cand.label);
      current = std::move(next);
    } else {
      std::printf("  REJECT  %s\n          violates %s\n", cand.label,
                  offender->ToString(catalog).c_str());
    }
  }
  std::printf("\nAll rejections were decided from the cover alone — no "
              "source access needed.\n");
  return 0;
}
