// Data exchange (application (1) of Section 1): verify that a view
// definition is a valid schema mapping — i.e. that predefined target
// CFDs are guaranteed for every source instance satisfying the source
// dependencies — and demonstrate the emptiness analysis (Example 3.1)
// that propagation silently interacts with.

#include <cstdio>
#include <string>
#include <vector>

#include "src/cover/propcfd_spc.h"
#include "src/propagation/emptiness.h"
#include "src/propagation/propagation.h"
#include "src/schema/schema.h"

using namespace cfdprop;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Get(Result<T> r) {
  Check(r.ok() ? Status::OK() : r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  Catalog catalog;
  Get(catalog.AddRelation("Employees", {"emp_id", "dept", "grade"}));
  Get(catalog.AddRelation("Depts", {"dept_id", "site", "head"}));

  auto konst = [&](const char* s) {
    return PatternValue::Constant(catalog.pool().Intern(s));
  };
  auto wc = PatternValue::Wildcard();

  std::vector<CFD> sigma = {
      Get(CFD::FD(0, {0}, 1)),  // emp_id -> dept
      Get(CFD::FD(0, {0}, 2)),  // emp_id -> grade
      Get(CFD::FD(1, {0}, 1)),  // dept_id -> site
      // Edinburgh departments are headed by "fan" (a toy conditional).
      Get(CFD::Make(1, {1}, {konst("EDI")}, 2, konst("fan"))),
  };

  // Mapping M: target Staff(emp_id, dept, site, head) is populated by
  // joining employees with their departments at the EDI site.
  SPCViewBuilder b(catalog);
  size_t emp = b.AddAtom(RelationId{0});
  size_t dep = Get(b.AddAtom("Depts"));
  Check(b.SelectEq(emp, "dept", dep, "dept_id"));
  Check(b.SelectConst(dep, "site", "EDI"));
  Check(b.Project(emp, "emp_id", "emp_id"));  // 0
  Check(b.Project(emp, "dept", "dept"));      // 1
  Check(b.Project(dep, "site", "site"));      // 2
  Check(b.Project(dep, "head", "head"));      // 3
  SPCView mapping = Get(b.Build());
  std::printf("Schema mapping:\n  %s\n\n", mapping.ToString(catalog).c_str());

  // Target constraints the exchange contract predefines on Staff.
  struct Target {
    const char* label;
    CFD cfd;
  };
  std::vector<Target> contract = {
      {"emp_id -> dept", Get(CFD::Make(kViewSchemaId, {0}, {wc}, 1, wc))},
      {"site is constantly EDI",
       CFD::ConstantColumn(kViewSchemaId, 2, catalog.pool().Intern("EDI"))},
      {"head is constantly fan",
       CFD::ConstantColumn(kViewSchemaId, 3, catalog.pool().Intern("fan"))},
      {"dept -> head", Get(CFD::Make(kViewSchemaId, {1}, {wc}, 3, wc))},
      {"head -> dept (NOT guaranteed)",
       Get(CFD::Make(kViewSchemaId, {3}, {wc}, 1, wc))},
  };

  std::printf("Contract verification (is the mapping valid?):\n");
  bool valid = true;
  for (const Target& t : contract) {
    bool ok = Get(IsPropagated(catalog, mapping, sigma, t.cfd));
    std::printf("  %-32s : %s\n", t.label, ok ? "guaranteed" : "NOT guaranteed");
    if (!ok) valid = false;
  }
  std::printf("=> the mapping %s the full contract.\n\n",
              valid ? "satisfies" : "does not satisfy");

  // The complete picture: a minimal cover of everything that transfers.
  PropCoverResult cover = Get(PropagationCoverSPC(catalog, mapping, sigma));
  std::printf("Everything the mapping guarantees (minimal cover, %zu "
              "CFDs):\n", cover.cover.size());
  for (const CFD& c : cover.cover) {
    std::printf("  %s\n", c.ToString(catalog).c_str());
  }

  // Emptiness interaction (Example 3.1): if the sources force a value
  // the selection excludes, the mapping is vacuous — formally valid but
  // useless, so a mapping designer wants a warning.
  std::vector<CFD> sigma_bad = sigma;
  sigma_bad.push_back(
      Get(CFD::Make(1, {0}, {wc}, 1, konst("GLA"))));  // all depts in GLA
  bool empty = Get(IsAlwaysEmpty(catalog, mapping, sigma_bad));
  std::printf("\nWith the extra CFD 'every department is in GLA', the EDI "
              "mapping is\n%s — every target CFD would hold vacuously "
              "(Lemma 4.5).\n",
              empty ? "ALWAYS EMPTY" : "non-empty");
  return 0;
}
