// Quickstart: the paper's running example (Example 1.1) end to end.
//
// Three customer sources (UK / US / NL) are integrated by an SPCU view
// that appends a country code. We ask which dependencies survive the
// integration: the source FDs do NOT hold on the view as plain FDs, but
// they DO hold as conditional functional dependencies (CFDs).
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "src/algebra/view.h"
#include "src/cfd/cfd.h"
#include "src/data/eval.h"
#include "src/data/validate.h"
#include "src/propagation/propagation.h"
#include "src/schema/schema.h"

using namespace cfdprop;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Get(Result<T> r) {
  Check(r.ok() ? Status::OK() : r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  // ---- 1. Source schemas: R1 (UK), R2 (US), R3 (NL) ------------------
  Catalog catalog;
  std::vector<std::string> attrs = {"AC",    "phn",  "name",
                                    "street", "city", "zip"};
  for (const char* name : {"R1", "R2", "R3"}) {
    Get(catalog.AddRelation(name, attrs));
  }
  enum : AttrIndex { kAC = 0, kPhn, kName, kStreet, kCity, kZip, kCC };

  // ---- 2. Source dependencies ----------------------------------------
  // f1: R1(zip -> street)   f2: R1(AC -> city)   f3: R3(AC -> city)
  // cfd1: R1([AC=20] -> [city=LDN])  cfd2: R3([AC=20] -> [city=Amsterdam])
  auto konst = [&](const char* s) {
    return PatternValue::Constant(catalog.pool().Intern(s));
  };
  std::vector<CFD> sigma = {
      Get(CFD::FD(0, {kZip}, kStreet)),
      Get(CFD::FD(0, {kAC}, kCity)),
      Get(CFD::FD(2, {kAC}, kCity)),
      Get(CFD::Make(0, {kAC}, {konst("20")}, kCity, konst("LDN"))),
      Get(CFD::Make(2, {kAC}, {konst("20")}, kCity, konst("Amsterdam"))),
  };
  std::printf("Source dependencies:\n");
  for (const CFD& c : sigma) {
    std::printf("  %s\n", c.ToString(catalog).c_str());
  }

  // ---- 3. The integration view V = Q1 union Q2 union Q3 --------------
  SPCUView view;
  const char* country_codes[3] = {"44", "01", "31"};
  for (int i = 0; i < 3; ++i) {
    SPCViewBuilder b(catalog);
    size_t atom = b.AddAtom(static_cast<RelationId>(i));
    for (const std::string& a : attrs) Check(b.Project(atom, a));
    Check(b.ProjectConstant("CC", country_codes[i]));
    view.disjuncts.push_back(Get(b.Build()));
  }
  std::printf("\nView:\n%s\n", view.ToString(catalog).c_str());

  // ---- 4. Propagation analysis ---------------------------------------
  auto wc = PatternValue::Wildcard();
  struct Query {
    const char* label;
    CFD cfd;
  };
  std::vector<Query> queries = {
      {"f1 as plain view FD   (zip -> street)",
       Get(CFD::Make(kViewSchemaId, {kZip}, {wc}, kStreet, wc))},
      {"phi1  ([CC=44, zip] -> street)",
       Get(CFD::Make(kViewSchemaId, {kCC, kZip}, {konst("44"), wc},
                     kStreet, wc))},
      {"plain (AC -> city)",
       Get(CFD::Make(kViewSchemaId, {kAC}, {wc}, kCity, wc))},
      {"phi2  ([CC=44, AC] -> city)",
       Get(CFD::Make(kViewSchemaId, {kCC, kAC}, {konst("44"), wc}, kCity,
                     wc))},
      {"phi3  ([CC=31, AC] -> city)",
       Get(CFD::Make(kViewSchemaId, {kCC, kAC}, {konst("31"), wc}, kCity,
                     wc))},
      {"phi4  ([CC=44, AC=20] -> city=LDN)",
       Get(CFD::Make(kViewSchemaId, {kCC, kAC}, {konst("44"), konst("20")},
                     kCity, konst("LDN")))},
      {"phi6  (CC, AC, phn -> street)",
       Get(CFD::Make(kViewSchemaId, {kCC, kAC, kPhn}, {wc, wc, wc},
                     kStreet, wc))},
  };
  std::printf("\nPropagation analysis (Sigma |=V phi?):\n");
  for (const Query& q : queries) {
    bool propagated = Get(IsPropagated(catalog, view, sigma, q.cfd));
    std::printf("  %-40s : %s\n", q.label,
                propagated ? "PROPAGATED" : "not propagated");
  }

  // ---- 5. Sanity-check on the Fig. 1 data -----------------------------
  Database db(catalog);
  Check(db.InsertText("R1", {"20", "1234567", "Mike", "Portland", "LDN",
                             "W1B 1JL"}));
  Check(db.InsertText("R1", {"20", "3456789", "Rick", "Portland", "LDN",
                             "W1B 1JL"}));
  Check(db.InsertText("R2", {"610", "3456789", "Joe", "Copley", "Darby",
                             "19082"}));
  Check(db.InsertText("R2", {"610", "1234567", "Mary", "Walnut", "Darby",
                             "19082"}));
  Check(db.InsertText("R3", {"20", "3456789", "Marx", "Kruise",
                             "Amsterdam", "1096"}));
  Check(db.InsertText("R3", {"36", "1234567", "Bart", "Grote", "Almere",
                             "1316"}));

  std::vector<Tuple> rows = Get(Evaluate(db, view));
  std::printf("\nMaterialized view has %zu tuples; checking queries:\n",
              rows.size());
  for (const Query& q : queries) {
    bool holds = Get(Satisfies(rows, q.cfd, 7));
    std::printf("  %-40s : %s on this instance\n", q.label,
                holds ? "holds" : "VIOLATED");
  }
  std::printf("\nNote how every PROPAGATED dependency holds on the data, "
              "while the\nnon-propagated plain FDs are violated by it — "
              "exactly Fig. 1 of the paper.\n");
  return 0;
}
