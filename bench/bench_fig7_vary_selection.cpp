// Figure 7: varying the selection condition |F|.
//
// Fixed |Sigma| = 2000, |Y| = 25, |Ec| = 4; |F| ranges over 1..10 for
// var% = 40 and 50.
//
//   Fig. 7(a): runtime DECREASES as |F| grows — domain constraints
//              interact with source CFDs, making them trivial or merging
//              them (line 9 of Fig. 2), so RBR sees a smaller Sigma_V
//              (watch the sigma_v counter shrink).
//   Fig. 7(b): cover cardinality goes up (more domain constraints
//              propagated) and then down (the interaction takes a
//              larger toll).

#include "bench/bench_util.h"

namespace cfdprop_bench {
namespace {

void BM_Fig7_PropagationCover(benchmark::State& state) {
  WorkloadParams params;
  params.num_selections = static_cast<size_t>(state.range(0));
  params.var_pct = static_cast<uint32_t>(state.range(1));
  RunCoverBenchmark(state, params);
}

BENCHMARK(BM_Fig7_PropagationCover)
    ->ArgNames({"F", "var_pct"})
    ->ArgsProduct({{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {40, 50}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfdprop_bench

BENCHMARK_MAIN();
