// Figure 5: varying the set of source CFDs.
//
// Fixed |Y| = 25, |F| = 10, |Ec| = 4; |Sigma| ranges over 200..2000 for
// var% = 40 and var% = 50 (LHS = 9, per-CFD LHS size uniform in [3, 9]).
//
//   Fig. 5(a): runtime vs |Sigma| — the paper reports near-linear growth
//              (< 7 s at |Sigma| = 2000 on 2008 hardware) and little
//              sensitivity to var%.
//   Fig. 5(b): cover cardinality vs |Sigma| — covers grow with |Sigma|
//              but stay below it (see the cover_cfds counter).

#include "bench/bench_util.h"

namespace cfdprop_bench {
namespace {

void BM_Fig5_PropagationCover(benchmark::State& state) {
  WorkloadParams params;
  params.num_cfds = static_cast<size_t>(state.range(0));
  params.var_pct = static_cast<uint32_t>(state.range(1));
  RunCoverBenchmark(state, params);
}

BENCHMARK(BM_Fig5_PropagationCover)
    ->ArgNames({"sigma", "var_pct"})
    ->ArgsProduct({{200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000},
                   {40, 50}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfdprop_bench

BENCHMARK_MAIN();
