// Ablation over PropCFD_SPC's design choices (Section 4.3):
//
//   * intermediate partitioned MinCover inside RBR (on/off, and the
//     partition size k0) — "removes redundant CFDs to an extent without
//     increasing the worst-case complexity";
//   * MinCover of the input Sigma (Fig. 2 line 1);
//   * folding class keys into Sigma_V (the constant-interaction
//     simplification behind the |F| trends of Fig. 7);
//   * the final MinCover (Fig. 2 line 13).
//
// Counters report the cover size each variant produces so the quality /
// time trade-off is visible (the variants are all covers of the same
// CFDp(Sigma, V); only minimality differs).

#include "bench/bench_util.h"

namespace cfdprop_bench {
namespace {

void RunVariant(benchmark::State& state, const PropCoverOptions& options) {
  WorkloadParams params;
  params.num_cfds = 1000;
  Workload w = MakeWorkload(params);

  size_t cover = 0, sigma_v = 0, rbr_out = 0;
  for (auto _ : state) {
    std::vector<CFD> sigma = w.sigma;
    auto result =
        PropagationCoverSPC(w.catalog, w.view, std::move(sigma), options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    cover = result->cover.size();
    sigma_v = result->sigma_v_size;
    rbr_out = result->rbr_output_size;
    benchmark::DoNotOptimize(result->cover.data());
  }
  state.counters["cover_cfds"] = static_cast<double>(cover);
  state.counters["sigma_v"] = static_cast<double>(sigma_v);
  state.counters["rbr_out"] = static_cast<double>(rbr_out);
}

void BM_Baseline(benchmark::State& state) {
  PropCoverOptions options;
  options.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  RunVariant(state, options);
}

void BM_NoIntermediateMinCover(benchmark::State& state) {
  PropCoverOptions options;
  options.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  options.rbr.intermediate_mincover = false;
  RunVariant(state, options);
}

void BM_PartitionSize(benchmark::State& state) {
  PropCoverOptions options;
  options.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  options.rbr.mincover_partition = static_cast<size_t>(state.range(0));
  RunVariant(state, options);
}

void BM_NoInputMinCover(benchmark::State& state) {
  PropCoverOptions options;
  options.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  options.input_mincover = false;
  RunVariant(state, options);
}

void BM_NoKeySimplification(benchmark::State& state) {
  PropCoverOptions options;
  options.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  options.simplify_with_keys = false;
  RunVariant(state, options);
}

void BM_NoFinalMinCover(benchmark::State& state) {
  PropCoverOptions options;
  options.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  options.final_mincover = false;
  RunVariant(state, options);
}

BENCHMARK(BM_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoIntermediateMinCover)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PartitionSize)
    ->ArgName("k0")
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoInputMinCover)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoKeySimplification)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoFinalMinCover)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfdprop_bench

BENCHMARK_MAIN();
