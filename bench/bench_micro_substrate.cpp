// Microbenchmarks for the substrates everything else is built on:
// CFD implication (the O(n^2) primitive of [8]), MinCover, consistency,
// the chase, the emptiness test, view evaluation and CFD validation on
// concrete data.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "src/cfd/implication.h"
#include "src/cfd/mincover.h"
#include "src/data/eval.h"
#include "src/data/validate.h"
#include "src/gen/generators.h"
#include "src/propagation/emptiness.h"

namespace cfdprop_bench {
namespace {

using namespace cfdprop;

struct SingleRelation {
  Catalog catalog;
  std::vector<CFD> sigma;
  size_t arity;
};

SingleRelation MakeSingleRelation(size_t num_cfds, uint64_t seed) {
  SchemaGenOptions schema_options;
  schema_options.num_relations = 1;
  schema_options.min_arity = 12;
  schema_options.max_arity = 12;
  SingleRelation out{GenerateSchema(schema_options, seed), {}, 12};

  CFDGenOptions cfd_options;
  cfd_options.count = num_cfds;
  cfd_options.min_lhs = 1;
  cfd_options.max_lhs = 4;
  cfd_options.var_pct = 50;
  out.sigma = GenerateCFDs(out.catalog, cfd_options, seed + 1);
  return out;
}

void BM_Implication(benchmark::State& state) {
  SingleRelation w = MakeSingleRelation(state.range(0), 3);
  CFD phi = CFD::FD(0, {0, 1}, 2).value();
  for (auto _ : state) {
    auto r = Implies(w.sigma, phi, w.arity);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_Implication)
    ->ArgName("sigma")
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_Consistency(benchmark::State& state) {
  SingleRelation w = MakeSingleRelation(state.range(0), 5);
  for (auto _ : state) {
    auto r = IsSatisfiable(w.sigma, w.arity);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_Consistency)
    ->ArgName("sigma")
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_MinCover(benchmark::State& state) {
  SingleRelation w = MakeSingleRelation(state.range(0), 7);
  size_t cover = 0;
  for (auto _ : state) {
    auto r = MinCover(w.sigma, w.arity);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    cover = r->size();
    benchmark::DoNotOptimize(r->data());
  }
  state.counters["cover_cfds"] = static_cast<double>(cover);
}
BENCHMARK(BM_MinCover)
    ->ArgName("sigma")
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_Emptiness(benchmark::State& state) {
  SchemaGenOptions schema_options;
  Catalog catalog = GenerateSchema(schema_options, 9);
  CFDGenOptions cfd_options;
  cfd_options.count = state.range(0);
  std::vector<CFD> sigma = GenerateCFDs(catalog, cfd_options, 10);
  ViewGenOptions view_options;
  auto view = GenerateSPCView(catalog, view_options, 11);
  if (!view.ok()) std::abort();

  for (auto _ : state) {
    auto r = IsAlwaysEmpty(catalog, *view, sigma);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_Emptiness)
    ->ArgName("sigma")
    ->Arg(200)
    ->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

void BM_ViewEvaluation(benchmark::State& state) {
  Catalog catalog;
  auto r1 = catalog.AddRelation("R", {"A", "B", "C"});
  auto r2 = catalog.AddRelation("S", {"D", "E"});
  if (!r1.ok() || !r2.ok()) std::abort();
  Database db(catalog);
  Rng rng(13);
  const size_t n = state.range(0);
  for (size_t i = 0; i < n; ++i) {
    (void)db.Insert(*r1, {catalog.pool().InternInt(rng.Below(n)),
                          catalog.pool().InternInt(rng.Below(50)),
                          catalog.pool().InternInt(rng.Below(n / 2 + 1))});
    (void)db.Insert(*r2, {catalog.pool().InternInt(rng.Below(n / 2 + 1)),
                          catalog.pool().InternInt(rng.Below(50))});
  }
  SPCViewBuilder b(catalog);
  size_t ra = b.AddAtom(*r1);
  size_t sa = b.AddAtom(*r2);
  (void)b.SelectEq(ra, "C", sa, "D");
  (void)b.Project(ra, "A");
  (void)b.Project(ra, "B");
  (void)b.Project(sa, "E");
  auto view = b.Build();
  if (!view.ok()) std::abort();

  size_t rows_out = 0;
  for (auto _ : state) {
    EvalOptions options;
    options.max_rows = 1u << 26;
    auto rows = Evaluate(db, *view, options);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    rows_out = rows->size();
    benchmark::DoNotOptimize(rows->data());
  }
  state.counters["rows"] = static_cast<double>(rows_out);
}
BENCHMARK(BM_ViewEvaluation)
    ->ArgName("rows")
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_ValidateCFD(benchmark::State& state) {
  Catalog catalog;
  auto rel = catalog.AddRelation("R", {"A", "B", "C", "D"});
  if (!rel.ok()) std::abort();
  Rng rng(17);
  std::vector<Tuple> rows;
  const size_t n = state.range(0);
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({catalog.pool().InternInt(rng.Below(n / 4 + 1)),
                    catalog.pool().InternInt(rng.Below(8)),
                    catalog.pool().InternInt(rng.Below(n)),
                    catalog.pool().InternInt(rng.Below(16))});
  }
  CFD cfd = CFD::Make(0, {0, 1},
                      {PatternValue::Wildcard(),
                       PatternValue::Constant(catalog.pool().InternInt(3))},
                      3, PatternValue::Wildcard())
                .value();
  for (auto _ : state) {
    auto v = FindViolations(rows, cfd, 4);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ValidateCFD)
    ->ArgName("rows")
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cfdprop_bench

BENCHMARK_MAIN();
