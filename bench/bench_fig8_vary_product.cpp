// Figure 8: varying the Cartesian product |Ec|.
//
// Fixed |Sigma| = 2000, |Y| = 25, |F| = 10; |Ec| ranges over 2..11 for
// var% = 40 and 50.
//
//   Fig. 8(a): runtime decreases as |Ec| grows (a fixed |Y| covers an
//              ever smaller fraction of the column space, so most source
//              CFDs are dropped), and flattens beyond |Ec| ~ 6.
//   Fig. 8(b): cover cardinality shrinks with |Ec| and is insensitive
//              to var% (the |Ec| effect dominates).

#include "bench/bench_util.h"

namespace cfdprop_bench {
namespace {

void BM_Fig8_PropagationCover(benchmark::State& state) {
  WorkloadParams params;
  params.num_atoms = static_cast<size_t>(state.range(0));
  params.var_pct = static_cast<uint32_t>(state.range(1));
  RunCoverBenchmark(state, params);
}

BENCHMARK(BM_Fig8_PropagationCover)
    ->ArgNames({"Ec", "var_pct"})
    ->ArgsProduct({{2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, {40, 50}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfdprop_bench

BENCHMARK_MAIN();
