// Figure 6: varying the number of projection attributes |Y|.
//
// Fixed |Sigma| = 2000, |F| = 10, |Ec| = 4; |Y| ranges over 5..50 for
// var% = 40 and 50.
//
//   Fig. 6(a): runtime vs |Y| — flat-ish until |Y| ~ 30, then rapid
//              growth (more source CFDs survive the projection, and RBR
//              dominates); var% matters once |Y| is large, because
//              constants block transitivity in RBR.
//   Fig. 6(b): the number of CFDs propagated grows with |Y| and with
//              var%, yet stays below |Sigma| even at |Y| = 50.

#include "bench/bench_util.h"

namespace cfdprop_bench {
namespace {

void BM_Fig6_PropagationCover(benchmark::State& state) {
  WorkloadParams params;
  params.num_projection = static_cast<size_t>(state.range(0));
  params.var_pct = static_cast<uint32_t>(state.range(1));
  RunCoverBenchmark(state, params);
}

BENCHMARK(BM_Fig6_PropagationCover)
    ->ArgNames({"Y", "var_pct"})
    ->ArgsProduct({{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}, {40, 50}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfdprop_bench

BENCHMARK_MAIN();
