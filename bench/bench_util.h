// Shared workload construction for the benchmark suite, following the
// experimental setting of Section 5: source schemas with at least 10
// relations of 10-20 attributes, CFD generator parameters (m, LHS,
// var%), SPC view generator parameters (|Y|, |F|, |Ec|), constants drawn
// from [1, 100000].

#ifndef CFDPROP_BENCH_BENCH_UTIL_H_
#define CFDPROP_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/cover/propcfd_spc.h"
#include "src/gen/generators.h"

namespace cfdprop_bench {

using namespace cfdprop;

struct Workload {
  Catalog catalog;
  std::vector<CFD> sigma;
  SPCView view;
};

struct WorkloadParams {
  size_t num_cfds = 2000;      // |Sigma|
  uint32_t var_pct = 40;       // var%
  size_t max_lhs = 9;          // LHS
  size_t num_projection = 25;  // |Y|
  size_t num_selections = 10;  // |F|
  size_t num_atoms = 4;        // |Ec|
  uint64_t seed = 42;
};

inline Workload MakeWorkload(const WorkloadParams& p) {
  SchemaGenOptions schema_options;  // 10 relations, 10-20 attributes
  Workload w{GenerateSchema(schema_options, p.seed), {}, {}};

  CFDGenOptions cfd_options;
  cfd_options.count = p.num_cfds;
  cfd_options.min_lhs = 3;
  cfd_options.max_lhs = p.max_lhs;
  cfd_options.var_pct = p.var_pct;
  w.sigma = GenerateCFDs(w.catalog, cfd_options, p.seed + 1);

  ViewGenOptions view_options;
  view_options.num_projection = p.num_projection;
  view_options.num_selections = p.num_selections;
  view_options.num_atoms = p.num_atoms;
  auto view = GenerateSPCView(w.catalog, view_options, p.seed + 2);
  if (!view.ok()) {
    std::fprintf(stderr, "view generation failed: %s\n",
                 view.status().ToString().c_str());
    std::abort();
  }
  w.view = std::move(view).value();
  return w;
}

/// Runs PropCFD_SPC once and records the paper's reported quantities as
/// benchmark counters: the cardinality of the minimal propagation cover
/// (Figs. 5b/6b/7b/8b) next to the runtime (Figs. 5a/6a/7a/8a).
inline void RunCoverBenchmark(benchmark::State& state,
                              const WorkloadParams& params) {
  Workload w = MakeWorkload(params);
  PropCoverOptions options;
  options.rbr.on_budget = RBROptions::OnBudget::kTruncate;

  size_t cover_size = 0, sigma_v = 0;
  bool truncated = false, always_empty = false;
  for (auto _ : state) {
    std::vector<CFD> sigma = w.sigma;  // PropagationCoverSPC consumes it
    auto result = PropagationCoverSPC(w.catalog, w.view, std::move(sigma),
                                      options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->cover.data());
    cover_size = result->cover.size();
    sigma_v = result->sigma_v_size;
    truncated = result->truncated;
    always_empty = result->always_empty;
  }
  state.counters["cover_cfds"] = static_cast<double>(cover_size);
  state.counters["sigma_v"] = static_cast<double>(sigma_v);
  state.counters["truncated"] = truncated ? 1 : 0;
  state.counters["always_empty"] = always_empty ? 1 : 0;
}

}  // namespace cfdprop_bench

#endif  // CFDPROP_BENCH_BENCH_UTIL_H_
