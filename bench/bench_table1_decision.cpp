// Tables 1 and 2: the dependency propagation *decision* problem across
// view-language fragments and settings.
//
// The tables are complexity results, so this benchmark measures the
// decision procedures that realize them:
//   * rows: view fragments S, P, C, SP, SC, PC, SPC, SPCU;
//   * source dependencies: FDs (Table 2 / top of Table 1) vs CFDs
//     (bottom of Table 1);
//   * settings: infinite-domain (PTIME chase) vs general (finite-domain
//     instantiation, coNP — watch the general-setting timings blow up
//     with the number of finite-domain attributes, which is the
//     exponential the theorems predict).

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "src/gen/generators.h"
#include "src/propagation/propagation.h"

namespace cfdprop_bench {
namespace {

using namespace cfdprop;

enum Fragment : int64_t { kS = 0, kP, kC, kSP, kSC, kPC, kSPC, kSPCU };

const char* FragmentName(int64_t f) {
  static const char* kNames[] = {"S", "P", "C", "SP", "SC", "PC", "SPC",
                                 "SPCU"};
  return kNames[f];
}

struct DecisionInstance {
  Catalog catalog;
  SPCUView view;
  std::vector<CFD> sigma;
  CFD phi;
};

/// Builds a decision instance for the given fragment. `cfd_sources`
/// selects CFDs (pattern constants) vs plain FDs; `finite_pct` > 0 puts
/// finite domains on that share of attributes.
DecisionInstance MakeInstance(int64_t fragment, bool cfd_sources,
                              uint32_t finite_pct, uint64_t seed) {
  SchemaGenOptions schema_options;
  schema_options.num_relations = 4;
  schema_options.min_arity = 8;
  schema_options.max_arity = 10;
  schema_options.finite_pct = finite_pct;
  schema_options.finite_domain_size = 2;
  DecisionInstance inst{GenerateSchema(schema_options, seed), {}, {}, {}};

  CFDGenOptions cfd_options;
  cfd_options.count = 40;
  cfd_options.min_lhs = 1;
  cfd_options.max_lhs = 3;
  cfd_options.var_pct = cfd_sources ? 50 : 100;  // 100% '_' = plain FDs
  inst.sigma = GenerateCFDs(inst.catalog, cfd_options, seed + 1);

  ViewGenOptions view_options;
  view_options.num_atoms =
      (fragment == kC || fragment == kSC || fragment == kPC ||
       fragment == kSPC || fragment == kSPCU)
          ? 3
          : 1;
  view_options.num_selections =
      (fragment == kS || fragment == kSP || fragment == kSC ||
       fragment == kSPC || fragment == kSPCU)
          ? 4
          : 0;
  bool project = fragment == kP || fragment == kSP || fragment == kPC ||
                 fragment == kSPC || fragment == kSPCU;
  view_options.num_projection = project ? 6 : SIZE_MAX;  // clamped to all

  auto v1 = GenerateSPCView(inst.catalog, view_options, seed + 2);
  if (!v1.ok()) std::abort();
  inst.view.disjuncts.push_back(std::move(v1).value());
  if (fragment == kSPCU) {
    // A union-compatible second disjunct (same |Y|).
    view_options.num_projection = inst.view.disjuncts[0].OutputArity();
    auto v2 = GenerateSPCView(inst.catalog, view_options, seed + 3);
    if (!v2.ok()) std::abort();
    inst.view.disjuncts.push_back(std::move(v2).value());
  }

  // Query CFD: first output column determines the second.
  size_t arity = inst.view.OutputArity();
  auto phi = CFD::FD(kViewSchemaId, {0}, arity > 1 ? 1 : 0);
  if (!phi.ok()) std::abort();
  inst.phi = std::move(phi).value();
  return inst;
}

void RunDecision(benchmark::State& state, bool cfd_sources,
                 bool general_setting) {
  const int64_t fragment = state.range(0);
  // The general setting needs finite domains to differ from the
  // infinite one; keep their count small or the coNP procedure explodes.
  const uint32_t finite_pct = general_setting ? 15 : 0;
  DecisionInstance inst =
      MakeInstance(fragment, cfd_sources, finite_pct, 7);

  PropagationOptions options;
  options.general_setting = general_setting;
  options.instantiation.max_instantiations = 1u << 22;

  bool propagated = false;
  for (auto _ : state) {
    auto r = IsPropagated(inst.catalog, inst.view, inst.sigma, inst.phi,
                          options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    propagated = *r;
    benchmark::DoNotOptimize(propagated);
  }
  state.SetLabel(std::string(FragmentName(fragment)) +
                 (propagated ? "/propagated" : "/not-propagated"));
}

void BM_Table2_FDs_Infinite(benchmark::State& state) {
  RunDecision(state, /*cfd_sources=*/false, /*general_setting=*/false);
}
void BM_Table2_FDs_General(benchmark::State& state) {
  RunDecision(state, /*cfd_sources=*/false, /*general_setting=*/true);
}
void BM_Table1_CFDs_Infinite(benchmark::State& state) {
  RunDecision(state, /*cfd_sources=*/true, /*general_setting=*/false);
}
void BM_Table1_CFDs_General(benchmark::State& state) {
  RunDecision(state, /*cfd_sources=*/true, /*general_setting=*/true);
}

BENCHMARK(BM_Table2_FDs_Infinite)
    ->ArgName("fragment")
    ->DenseRange(kS, kSPCU)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Table2_FDs_General)
    ->ArgName("fragment")
    ->DenseRange(kS, kSPCU)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Table1_CFDs_Infinite)
    ->ArgName("fragment")
    ->DenseRange(kS, kSPCU)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Table1_CFDs_General)
    ->ArgName("fragment")
    ->DenseRange(kS, kSPCU)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cfdprop_bench

BENCHMARK_MAIN();
