// Ablation: RBR vs the textbook closure-based method for propagation
// covers via projection (Sections 1 and 4.1).
//
// Two workload families:
//   * Example 4.1 (Fischer-Jou-Tsou): Ai -> Ci, Bi -> Ci, C1..Cn -> D,
//     projecting out the Ci. Covers are inherently exponential (2^n), so
//     BOTH methods blow up — this is the adversarial case.
//   * Random FD workloads with small projected covers: here RBR is
//     output-sensitive and stays polynomial while the closure method
//     still pays its unconditional 2^|Y| enumeration. This gap is the
//     reason the paper builds on RBR.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "src/base/rng.h"
#include "src/cover/closure_baseline.h"
#include "src/cover/rbr.h"

namespace cfdprop_bench {
namespace {

using namespace cfdprop;

/// Example 4.1 with parameter n over arity 3n+1.
struct Fjt {
  std::vector<CFD> fds;
  std::vector<AttrIndex> y;     // Ai, Bi, D
  std::vector<AttrIndex> drop;  // Ci
  size_t arity;
};

Fjt MakeFjt(size_t n) {
  Fjt out;
  out.arity = 3 * n + 1;
  std::vector<AttrIndex> cs;
  for (size_t i = 0; i < n; ++i) {
    AttrIndex a = static_cast<AttrIndex>(i);
    AttrIndex b = static_cast<AttrIndex>(n + i);
    AttrIndex c = static_cast<AttrIndex>(2 * n + i);
    out.fds.push_back(CFD::FD(0, {a}, c).value());
    out.fds.push_back(CFD::FD(0, {b}, c).value());
    out.y.push_back(a);
    out.y.push_back(b);
    cs.push_back(c);
    out.drop.push_back(c);
  }
  out.fds.push_back(CFD::FD(0, cs, static_cast<AttrIndex>(3 * n)).value());
  out.y.push_back(static_cast<AttrIndex>(3 * n));
  return out;
}

/// Random sparse FD chain workload whose projected cover stays small.
struct RandomFds {
  std::vector<CFD> fds;
  std::vector<AttrIndex> y;
  std::vector<AttrIndex> drop;
  size_t arity;
};

RandomFds MakeRandom(size_t arity, size_t num_fds, size_t y_size,
                     uint64_t seed) {
  Rng rng(seed);
  RandomFds out;
  out.arity = arity;
  for (size_t i = 0; i < num_fds; ++i) {
    AttrIndex a = static_cast<AttrIndex>(rng.Below(arity));
    AttrIndex b = static_cast<AttrIndex>(rng.Below(arity));
    if (a == b) b = static_cast<AttrIndex>((b + 1) % arity);
    auto fd = CFD::FD(0, {a}, b);
    if (fd.ok()) out.fds.push_back(std::move(fd).value());
  }
  for (AttrIndex i = 0; i < arity; ++i) {
    (i < y_size ? out.y : out.drop).push_back(i);
  }
  return out;
}

void BM_Fjt_RBR(benchmark::State& state) {
  Fjt w = MakeFjt(static_cast<size_t>(state.range(0)));
  RBROptions options;
  options.intermediate_mincover = false;  // measure raw resolution
  size_t cover = 0;
  for (auto _ : state) {
    auto r = RBR(w.fds, w.drop, w.arity, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    cover = r->cover.size();
    benchmark::DoNotOptimize(r->cover.data());
  }
  state.counters["cover_cfds"] = static_cast<double>(cover);
}

void BM_Fjt_Closure(benchmark::State& state) {
  Fjt w = MakeFjt(static_cast<size_t>(state.range(0)));
  size_t cover = 0;
  for (auto _ : state) {
    auto r = ClosureBasedProjectionCover(w.fds, w.y, w.arity);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    cover = r->size();
    benchmark::DoNotOptimize(r->data());
  }
  state.counters["cover_cfds"] = static_cast<double>(cover);
}

void BM_Random_RBR(benchmark::State& state) {
  RandomFds w = MakeRandom(static_cast<size_t>(state.range(0)),
                           /*num_fds=*/state.range(0),
                           /*y_size=*/state.range(0) / 2, 11);
  size_t cover = 0;
  for (auto _ : state) {
    auto r = RBR(w.fds, w.drop, w.arity, {});
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    cover = r->cover.size();
    benchmark::DoNotOptimize(r->cover.data());
  }
  state.counters["cover_cfds"] = static_cast<double>(cover);
}

void BM_Random_Closure(benchmark::State& state) {
  RandomFds w = MakeRandom(static_cast<size_t>(state.range(0)),
                           state.range(0), state.range(0) / 2, 11);
  size_t cover = 0;
  for (auto _ : state) {
    auto r = ClosureBasedProjectionCover(w.fds, w.y, w.arity);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    cover = r->size();
    benchmark::DoNotOptimize(r->data());
  }
  state.counters["cover_cfds"] = static_cast<double>(cover);
}

// Example 4.1: n up to 7 => |Y| = 2n+1 <= 15 so the closure method can
// still finish; both curves are exponential in n (cover = 2^n).
BENCHMARK(BM_Fjt_RBR)->ArgName("n")->DenseRange(2, 7)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Fjt_Closure)->ArgName("n")->DenseRange(2, 7)->Unit(
    benchmark::kMicrosecond);

// Random chains: RBR stays near-linear in the (small) output while the
// closure method doubles per added attribute.
BENCHMARK(BM_Random_RBR)->ArgName("arity")->DenseRange(10, 40, 6)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Random_Closure)->ArgName("arity")->DenseRange(10, 40, 6)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace cfdprop_bench

BENCHMARK_MAIN();
