// Throughput of the propagation engine (src/engine/) vs. the uncached
// one-shot pipeline: covers served per second over a fixed request
// stream at cache hit rates 0%, 50% and 95%, with 1/2/4/8 worker
// threads.
//
// The stream has kStreamLen requests drawn from a pool of distinct
// generated views; the hit rate is set by construction (each unique view
// first occurs as a miss, every repeat is a hit), and the cache is
// cleared between benchmark iterations so every iteration replays the
// same miss/hit pattern. Counters report the achieved hit rate so the
// target can be audited in the output.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/gen/generators.h"
#include "src/net/cover_client.h"
#include "src/net/cover_server.h"
#include "src/obs/trace.h"
#include "src/parser/parser.h"
#include "src/service/catalog_service.h"

namespace cfdprop_bench {

using namespace cfdprop;

namespace {

constexpr size_t kStreamLen = 120;

struct EngineWorkloadParams {
  size_t num_cfds = 160;
  size_t num_views = kStreamLen;  // distinct views available
  uint64_t seed = 42;
};

/// Catalog + sigma + a pool of distinct views, all generated before
/// serving starts (view generation interns constants and must not race
/// with the worker pool).
struct EngineWorkload {
  Catalog catalog;
  std::vector<CFD> sigma;
  std::vector<SPCView> views;
};

EngineWorkload MakeEngineWorkload(const EngineWorkloadParams& p) {
  SchemaGenOptions schema_options;  // 10 relations, 10-20 attributes
  EngineWorkload w{GenerateSchema(schema_options, p.seed), {}, {}};

  CFDGenOptions cfd_options;
  cfd_options.count = p.num_cfds;
  cfd_options.min_lhs = 2;
  cfd_options.max_lhs = 5;
  w.sigma = GenerateCFDs(w.catalog, cfd_options, p.seed + 1);

  ViewGenOptions view_options;
  view_options.num_projection = 10;
  view_options.num_selections = 4;
  view_options.num_atoms = 2;
  w.views.reserve(p.num_views);
  for (size_t i = 0; i < p.num_views; ++i) {
    auto view = GenerateSPCView(w.catalog, view_options, p.seed + 10 + i);
    if (!view.ok()) {
      std::fprintf(stderr, "view generation failed: %s\n",
                   view.status().ToString().c_str());
      std::abort();
    }
    w.views.push_back(std::move(view).value());
  }
  return w;
}

/// A kStreamLen-request stream over `unique` distinct views: view i of
/// the pool is requested at positions i, i+unique, i+2*unique, ... so
/// per (cleared-cache) iteration exactly `unique` requests miss and the
/// rest hit: hit rate = 1 - unique/kStreamLen.
std::vector<Engine::Request> MakeStream(const EngineWorkload& w,
                                        size_t unique) {
  std::vector<Engine::Request> stream;
  stream.reserve(kStreamLen);
  for (size_t i = 0; i < kStreamLen; ++i) {
    stream.push_back({w.views[i % unique], 0});
  }
  return stream;
}

size_t UniqueForHitPct(int64_t hit_pct) {
  // 0% -> 120 unique, 50% -> 60, 95% -> 6.
  return std::max<size_t>(1, kStreamLen * (100 - hit_pct) / 100);
}

/// Engine serving: state.range(0) = target hit %, range(1) = threads.
void BM_EngineServe(benchmark::State& state) {
  EngineWorkload w = MakeEngineWorkload({});
  std::vector<Engine::Request> stream =
      MakeStream(w, UniqueForHitPct(state.range(0)));

  EngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  options.cache_capacity = 4 * kStreamLen;
  options.cover.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  Engine engine(std::move(w.catalog), options);
  auto sigma_id = engine.RegisterSigma(std::move(w.sigma));
  if (!sigma_id.ok()) {
    state.SkipWithError(sigma_id.status().ToString().c_str());
    return;
  }

  for (auto _ : state) {
    state.PauseTiming();
    engine.ClearCache();
    state.ResumeTiming();
    auto results = engine.PropagateBatch(stream);
    for (auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamLen));
  EngineStatsSnapshot stats = engine.Stats();
  state.counters["hit_rate_pct"] = 100.0 * stats.cache.HitRate();
  state.counters["covers_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kStreamLen,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineServe)
    ->ArgNames({"hit_pct", "threads"})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({0, 4})
    ->Args({0, 8})
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->Args({50, 8})
    ->Args({95, 1})
    ->Args({95, 2})
    ->Args({95, 4})
    ->Args({95, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Observability tax: the 95%-hit serving stream with the engine's
/// latency histograms on (metrics:1, the default) vs the sum-only
/// registry-disabled path (metrics:0). Both arms pay the clock reads —
/// the sums back EngineStatsSnapshot either way — so the delta is
/// purely the histogram bucket increments (one relaxed fetch_add per
/// stage per request). The ISSUE-6 budget is <2% covers_per_sec.
void BM_MetricsOverhead(benchmark::State& state) {
  EngineWorkload w = MakeEngineWorkload({});
  std::vector<Engine::Request> stream = MakeStream(w, UniqueForHitPct(95));

  EngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 4 * kStreamLen;
  options.cover.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  options.metrics = state.range(0) != 0;
  Engine engine(std::move(w.catalog), options);
  auto sigma_id = engine.RegisterSigma(std::move(w.sigma));
  if (!sigma_id.ok()) {
    state.SkipWithError(sigma_id.status().ToString().c_str());
    return;
  }

  for (auto _ : state) {
    state.PauseTiming();
    engine.ClearCache();
    state.ResumeTiming();
    auto results = engine.PropagateBatch(stream);
    for (auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamLen));
  EngineStatsSnapshot stats = engine.Stats();
  state.counters["hit_rate_pct"] = 100.0 * stats.cache.HitRate();
  // Audits which arm ran: the recorded sample count is requests (on)
  // or zero (off).
  state.counters["hist_samples"] =
      static_cast<double>(stats.total_latency.count);
  state.counters["covers_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kStreamLen,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MetricsOverhead)
    ->ArgNames({"metrics"})
    ->Args({0})
    ->Args({1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Tracing tax on the same 95%-hit serving path, three arms: no tracer
/// installed (tracer:0, the baseline), a tracer installed with
/// sampling off (tracer:1 — the "tracing disabled" arm the ISSUE-10
/// <2% covers_per_sec budget gates: one StartTrace fetch_add and a
/// branch per batch, never a clock read), and 1/1 sampling (tracer:2 —
/// every batch reads the clock twice and records its compute span).
void BM_TraceOverhead(benchmark::State& state) {
  EngineWorkload w = MakeEngineWorkload({});
  std::vector<Engine::Request> stream = MakeStream(w, UniqueForHitPct(95));

  const int arm = static_cast<int>(state.range(0));
  obs::ObsOptions topts;
  topts.trace_sample_shift = arm == 2 ? 0 : -1;
  topts.trace_seed = 42;
  obs::Tracer tracer(topts);
  std::unique_ptr<obs::ScopedProcessTracer> scoped;
  if (arm != 0) scoped = std::make_unique<obs::ScopedProcessTracer>(&tracer);

  EngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 4 * kStreamLen;
  options.cover.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  Engine engine(std::move(w.catalog), options);
  auto sigma_id = engine.RegisterSigma(std::move(w.sigma));
  if (!sigma_id.ok()) {
    state.SkipWithError(sigma_id.status().ToString().c_str());
    return;
  }

  for (auto _ : state) {
    state.PauseTiming();
    engine.ClearCache();
    state.ResumeTiming();
    obs::TraceContext ctx;
    if (arm != 0) ctx = tracer.StartTrace();
    auto results = engine.PropagateBatch(stream, ctx);
    for (auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamLen));
  EngineStatsSnapshot stats = engine.Stats();
  state.counters["hit_rate_pct"] = 100.0 * stats.cache.HitRate();
  // Audits which arm ran: iterations (sampling on) or zero.
  state.counters["spans"] = static_cast<double>(tracer.spans_recorded());
  state.counters["covers_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kStreamLen,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceOverhead)
    ->ArgNames({"tracer"})
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// SPCU serving: streams of 2-disjunct unions whose disjuncts overlap
/// across requests (union i = views {i, i+1} mod `unique`), so even a
/// cold union finds one disjunct already cached by its neighbor — the
/// partial-hit payoff. state.range(0) = distinct unions, range(1) =
/// threads. Counters report the achieved disjunct hit rate.
void BM_EngineServeSPCU(benchmark::State& state) {
  EngineWorkload w = MakeEngineWorkload({});
  const size_t unique = static_cast<size_t>(state.range(0));
  std::vector<Engine::Request> stream;
  stream.reserve(kStreamLen);
  for (size_t i = 0; i < kStreamLen; ++i) {
    SPCUView u;
    u.disjuncts = {w.views[i % unique], w.views[(i + 1) % unique]};
    stream.push_back({std::move(u), 0});
  }

  EngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  options.cache_capacity = 4 * kStreamLen;
  options.cover.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  Engine engine(std::move(w.catalog), options);
  auto sigma_id = engine.RegisterSigma(std::move(w.sigma));
  if (!sigma_id.ok()) {
    state.SkipWithError(sigma_id.status().ToString().c_str());
    return;
  }

  for (auto _ : state) {
    state.PauseTiming();
    engine.ClearCache();
    state.ResumeTiming();
    auto results = engine.PropagateBatch(stream);
    for (auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamLen));
  EngineStatsSnapshot stats = engine.Stats();
  uint64_t disjuncts = stats.disjunct_hits + stats.disjunct_misses;
  // Overall cache hit rate: fused-union lookups AND the per-disjunct
  // partial-hit lookups share these counters; disjunct_hit_pct below is
  // the union-assembly reuse metric.
  state.counters["cache_hit_rate_pct"] = 100.0 * stats.cache.HitRate();
  state.counters["disjunct_hit_pct"] =
      disjuncts == 0 ? 0.0 : 100.0 * stats.disjunct_hits / disjuncts;
  state.counters["covers_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kStreamLen,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineServeSPCU)
    ->ArgNames({"unique", "threads"})
    ->Args({6, 1})
    ->Args({6, 4})
    ->Args({60, 1})
    ->Args({60, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Sigma churn: a 95%-repeat stream served while AddCfd/RetractCfd
/// toggles an extra CFD every `range(0)` batches (0 = no churn). Each
/// mutation re-minimizes the touched sigma and selectively invalidates
/// its lines, so the metric shows how much recompute one mutation drags
/// back into the request path.
void BM_EngineChurn(benchmark::State& state) {
  EngineWorkload w = MakeEngineWorkload({});
  std::vector<Engine::Request> stream = MakeStream(w, UniqueForHitPct(95));

  EngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 4 * kStreamLen;
  options.cover.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  Engine engine(std::move(w.catalog), options);
  auto sigma_id = engine.RegisterSigma(std::move(w.sigma));
  if (!sigma_id.ok()) {
    state.SkipWithError(sigma_id.status().ToString().c_str());
    return;
  }
  // Pre-built churn CFD: an FD over relation 0 (no interning mid-run).
  const CFD churned = CFD::FD(0, {0, 1}, 2).value();

  const int64_t churn_every = state.range(0);
  int64_t batch_no = 0;
  bool added = false;
  for (auto _ : state) {
    if (churn_every > 0 && batch_no++ % churn_every == 0) {
      auto s = added ? engine.RetractCfd(*sigma_id, churned)
                     : engine.AddCfd(*sigma_id, churned);
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
      added = !added;
    }
    auto results = engine.PropagateBatch(stream);
    for (auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamLen));
  EngineStatsSnapshot stats = engine.Stats();
  state.counters["hit_rate_pct"] = 100.0 * stats.cache.HitRate();
  state.counters["invalidations"] =
      static_cast<double>(stats.cache.invalidations);
  state.counters["covers_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kStreamLen,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineChurn)
    ->ArgNames({"churn_every"})
    ->Args({0})
    ->Args({4})
    ->Args({1})
    ->Unit(benchmark::kMillisecond);

/// Multi-tenant serving through CatalogService: range(0) tenants, each
/// its own catalog/engine, one async 95%-repeat batch per tenant per
/// iteration, all in flight together across the dispatcher pool.
/// covers/sec aggregates over every tenant, so compare per-tenant cost
/// against BM_EngineServe/hit_pct:95 for the routing overhead and
/// against the tenant count for scaling (1-CPU container: expect flat
/// wall-clock per request, not per tenant).
void BM_ServiceTenantSweep(benchmark::State& state) {
  const size_t num_tenants = static_cast<size_t>(state.range(0));
  ServiceOptions options;
  options.dispatcher_threads = num_tenants;
  options.engine.num_threads = 1;
  options.global_cache_budget = num_tenants * 4 * kStreamLen;
  options.engine.cover.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  CatalogService service(options);

  std::vector<std::vector<Engine::Request>> streams;
  std::vector<TenantHandle> handles;
  for (size_t t = 0; t < num_tenants; ++t) {
    EngineWorkload w = MakeEngineWorkload({/*num_cfds=*/160,
                                           /*num_views=*/kStreamLen,
                                           /*seed=*/42 + t});
    streams.push_back(MakeStream(w, UniqueForHitPct(95)));
    auto opened = service.OpenCatalog("tenant" + std::to_string(t),
                                      std::move(w.catalog),
                                      {std::move(w.sigma)});
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      return;
    }
    handles.push_back(std::move(opened).value());
  }

  for (auto _ : state) {
    state.PauseTiming();
    for (auto& h : handles) h->engine().ClearCache();
    state.ResumeTiming();
    std::vector<std::future<BatchReply>> futures;
    futures.reserve(num_tenants);
    for (size_t t = 0; t < num_tenants; ++t) {
      auto submitted = service.SubmitBatch("tenant" + std::to_string(t),
                                           streams[t]);
      if (!submitted.ok()) {
        state.SkipWithError(submitted.status().ToString().c_str());
        return;
      }
      futures.push_back(std::move(submitted).value());
    }
    for (auto& f : futures) {
      BatchReply reply = f.get();
      for (auto& r : reply.results) {
        if (!r.ok()) {
          state.SkipWithError(r.status().ToString().c_str());
          return;
        }
      }
      benchmark::DoNotOptimize(reply.results.data());
    }
  }
  const auto total = static_cast<int64_t>(state.iterations()) *
                     static_cast<int64_t>(num_tenants * kStreamLen);
  state.SetItemsProcessed(total);
  state.counters["covers_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceTenantSweep)
    ->ArgNames({"tenants"})
    ->Args({1})
    ->Args({2})
    ->Args({4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Network serving: the BM_ServiceTenantSweep workload driven through
/// CoverServer/CoverClient over loopback TCP — each iteration is one
/// client→server→client round-trip batch per tenant (kStreamLen
/// requests at 95% hits), with one client thread per tenant so batches
/// overlap exactly as the in-process sweep's futures do. The delta
/// against BM_ServiceTenantSweep is the wire tax: framing, checksums,
/// cover encode/decode and the socket round-trip. (1-CPU container
/// caveat: client threads, server connection threads and dispatchers
/// all share one core, so this is protocol overhead, not scaling.)
void BM_NetLoopbackBatch(benchmark::State& state) {
  const size_t num_tenants = static_cast<size_t>(state.range(0));
  ServiceOptions options;
  options.dispatcher_threads = num_tenants;
  options.engine.num_threads = 1;
  options.global_cache_budget = num_tenants * 4 * kStreamLen;
  options.engine.cover.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  CatalogService service(options);
  net::CoverServer server(service);
  if (Status started = server.Start(); !started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }

  // Per-tenant spec built programmatically (no parse): generated views
  // under names V0..Vn, requested as a 95%-hit name stream mirroring
  // MakeStream.
  const size_t unique = UniqueForHitPct(95);
  std::vector<std::string> names;
  names.reserve(kStreamLen);
  for (size_t i = 0; i < kStreamLen; ++i) {
    names.push_back("V" + std::to_string(i % unique));
  }
  std::vector<TenantHandle> handles;
  for (size_t t = 0; t < num_tenants; ++t) {
    EngineWorkload w = MakeEngineWorkload({/*num_cfds=*/160,
                                           /*num_views=*/kStreamLen,
                                           /*seed=*/42 + t});
    Spec spec;
    spec.catalog = std::move(w.catalog);
    spec.source_cfds = std::move(w.sigma);
    for (size_t i = 0; i < w.views.size(); ++i) {
      std::string name = "V" + std::to_string(i);
      spec.view_names.push_back(name);
      spec.views.emplace(std::move(name), SPCUView(std::move(w.views[i])));
    }
    const std::string tenant = "tenant" + std::to_string(t);
    auto opened = server.OpenParsedSpec(tenant, std::move(spec));
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      return;
    }
    handles.push_back(std::move(service.ResolveCatalog(tenant)).value());
  }

  // One connected client (with its own decode pool) per tenant, reused
  // across iterations.
  struct ClientCtx {
    std::unique_ptr<net::CoverClient> client;
    Catalog scratch;  // decode pool
  };
  std::vector<ClientCtx> clients(num_tenants);
  for (size_t t = 0; t < num_tenants; ++t) {
    net::CoverClientOptions client_options;
    client_options.port = server.port();
    clients[t].client =
        std::make_unique<net::CoverClient>(client_options);
    if (Status connected = clients[t].client->Connect(); !connected.ok()) {
      state.SkipWithError(connected.ToString().c_str());
      return;
    }
  }

  for (auto _ : state) {
    state.PauseTiming();
    for (auto& h : handles) h->engine().ClearCache();
    state.ResumeTiming();
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    threads.reserve(num_tenants);
    for (size_t t = 0; t < num_tenants; ++t) {
      threads.emplace_back([&, t] {
        auto reply = clients[t].client->SubmitBatch(
            "tenant" + std::to_string(t), names,
            clients[t].scratch.pool());
        if (!reply.ok() || !reply->status.ok() ||
            reply->results.size() != kStreamLen) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        benchmark::DoNotOptimize(reply->results.data());
      });
    }
    for (auto& th : threads) th.join();
    if (failed.load(std::memory_order_relaxed)) {
      state.SkipWithError("network batch failed");
      return;
    }
  }
  const auto total = static_cast<int64_t>(state.iterations()) *
                     static_cast<int64_t>(num_tenants * kStreamLen);
  state.SetItemsProcessed(total);
  state.counters["covers_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  clients.clear();
  server.Stop();
}
BENCHMARK(BM_NetLoopbackBatch)
    ->ArgNames({"tenants"})
    ->Args({1})
    ->Args({2})
    ->Args({4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Baseline: the uncached one-shot pipeline over the same stream (every
/// request recomputes MinCover/ComputeEQ/RBR). Compare covers_per_sec
/// against BM_EngineServe/hit_pct:95 for the cache payoff.
void BM_UncachedSingleShot(benchmark::State& state) {
  EngineWorkload w = MakeEngineWorkload({});
  std::vector<Engine::Request> stream =
      MakeStream(w, UniqueForHitPct(state.range(0)));

  PropCoverOptions options;
  options.rbr.on_budget = RBROptions::OnBudget::kTruncate;
  for (auto _ : state) {
    for (const Engine::Request& req : stream) {
      std::vector<CFD> sigma = w.sigma;  // consumed per call
      // Requests hold (single-disjunct) SPCU views; the SPCU entry point
      // delegates straight to the SPC pipeline.
      auto result = PropagationCoverSPCU(w.catalog, req.view,
                                         std::move(sigma), options);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(result->cover.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamLen));
  state.counters["covers_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kStreamLen,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UncachedSingleShot)
    ->ArgNames({"hit_pct"})
    ->Args({0})
    ->Args({95})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfdprop_bench

BENCHMARK_MAIN();
